"""Price-coordination (dual decomposition) solver mode.

The paper's joint SOCP couples applications only through the shared platform
capacity rows — Constraints (9)/(10) — which is the textbook shape for dual
decomposition: give every application block its *own* copy of each capacity
row with a private right-hand side (its capacity **share**), keep the shares
summing to the true capacity, and coordinate the shares until the shadow
prices agree across blocks.  Each price iteration then solves ``N``
independent per-application cone programs instead of one joint program, and
those subproblem solves parallelise over threads or worker processes.

Algorithm
---------
The coordinator mirrors the joint barrier solver's rung ladder
(:class:`repro.solver.barrier.BarrierOptions`) and synchronises every block
to the *same* barrier parameter ``t`` via single-centering solves
(:attr:`~repro.solver.barrier.BarrierOptions.centering_barrier`):

* **Prime** — every block full-solves standalone under shares equal to the
  full capacities.  A block that is infeasible alone proves the joint
  program infeasible.  If the standalone optima already fit inside the
  shared capacities, their union *is* the joint optimum (the coupling is
  inactive) and coordination is skipped entirely — the embarrassingly
  parallel fast path.
* **Fit** — otherwise the block objectives are temporarily tilted toward
  reducing usage of the overloaded rows until a strictly feasible capacity
  split exists (a bound-based certificate catches provably infeasible rows
  first).
* **Coordinate** — shares are repeatedly re-split by the *equal-slack* rule
  ``share ← usage + joint_slack / participants`` with all blocks re-centered
  at the synchronized barrier parameter.  At a fixed point every block sees
  the same slack, hence the same price ``λ_r = N_r/(t·s_r)``, and the
  assembled point is the central point of the joint program under the
  block-split barrier.  Climbing the rung ladder until
  ``m/t < tolerance·max(1, |objective|)`` therefore lands within the same
  duality-gap bound as the joint block-Newton solve.

Every redistribution keeps ``Σ_b share_{b,r} = T_r`` exactly and strictly
increases each block's share above its current usage, so previously centered
points remain strictly feasible: subproblem re-solves are warm-started
(phase I is skipped) across all price iterations, and *any* iterate
assembles into a jointly feasible point — the anytime property the admission
fast path builds on.

Subproblems run through per-block :class:`~repro.solver.parametric.
ParametricProblem` / :class:`~repro.solver.parametric.SolveSession` pairs
whose share rows are named rhs slots.  Fan-out is in-process threads by
default (low overhead; the solves are partly NumPy-parallel) or persistent
worker processes with fixed block affinity (real multicore scaling; each
worker keeps its blocks' warm sessions alive across price iterations, the
same persistent-pool discipline as :class:`repro.batch.executor.
BatchExecutor`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

try:  # pragma: no cover - scipy is present in the supported environments
    from scipy import sparse as _sparse
except Exception:  # pragma: no cover
    _sparse = None

from repro.exceptions import NumericalError
from repro.obs import metrics
from repro.obs.trace import span as obs_span
from repro.reliability.faults import active_plan as _active_fault_plan
from repro.reliability.faults import maybe_fail as _maybe_fail
from repro.solver.parametric import ParametricProblem, SessionStats, SolveSession
from repro.solver.problem import (
    CompiledCone,
    CompiledHyperbolic,
    CompiledProblem,
)
from repro.solver.result import Solution, SolverStatus

__all__ = ["DecomposedOptions", "solve_decomposed", "DecompositionError"]


class DecompositionError(NumericalError):
    """Coordination failed; the caller falls back to the joint solve."""


#: Objective-tilt aggressiveness schedule of the fit phase; ``None`` is the
#: pure usage-minimisation round (the strongest push toward feasibility).
_FIT_TAUS: Tuple[Optional[float], ...] = (1.0, 4.0, 16.0, 64.0, None)


@dataclass
class DecomposedOptions:
    """Coordination knobs of the decomposed solver mode.

    All fields are settable through the generic solve ``options`` mapping
    under ``decomposed_``-prefixed keys (e.g. ``decomposed_workers=4``);
    the remaining options flow through to the per-block barrier solves.
    """

    #: subproblem parallelism: 0/1 solves blocks serially in-process
    workers: int = 0
    #: ``"thread"`` (in-process pool) or ``"process"`` (persistent worker
    #: processes with fixed block affinity)
    fanout: str = "thread"
    #: relative share-change threshold of the final equalization polish
    price_tolerance: float = 1e-7
    #: relative share-change threshold of the intermediate rungs
    inner_tolerance: float = 1e-3
    #: total price-iteration budget across all rungs
    max_price_iterations: int = 400
    #: equalization iterations per rung
    max_inner_iterations: int = 60
    #: objective-tilt rounds before giving up on finding a feasible split
    fit_rounds: int = len(_FIT_TAUS)
    #: fall back to the joint barrier solve when coordination fails
    fallback: bool = True
    #: polish the coordinated point with a warm-started *joint* barrier solve
    #: when the coupling was active.  The consensus iteration's traction on
    #: the capacity split fades as the barrier parameter grows (the usage
    #: response stiffens like ``1/t``), so coordination alone lands within
    #: ~``1e-3`` of the optimum on contended instances; the polish — phase I
    #: skipped, restarted a few rungs below the coordinated ladder — locks
    #: the result to the block-Newton optimum.  Uncontended workloads never
    #: reach it (their standalone optima are exactly jointly optimal).
    polish: bool = True

    @classmethod
    def from_mapping(
        cls, options: Mapping[str, object]
    ) -> Tuple["DecomposedOptions", Dict[str, object]]:
        """Split a generic options mapping into (decomposed, barrier) parts."""
        parsed = cls()
        passthrough: Dict[str, object] = {}
        for key, value in options.items():
            if key.startswith("decomposed_"):
                name = key[len("decomposed_"):]
                if not hasattr(parsed, name):
                    continue
                current = getattr(parsed, name)
                if isinstance(current, bool):
                    setattr(parsed, name, bool(value))
                elif isinstance(current, int):
                    setattr(parsed, name, int(value))
                elif isinstance(current, float):
                    setattr(parsed, name, float(value))
                else:
                    setattr(parsed, name, value)
            else:
                passthrough[key] = value
        return parsed, passthrough


# ---------------------------------------------------------------------------
# block splitting
# ---------------------------------------------------------------------------

@dataclass
class _Block:
    """One application block, compiled standalone with share rows appended."""

    index: int
    start: int
    stop: int
    compiled: CompiledProblem
    #: positions into the decomposition's coupling-row list this block uses
    coupling: np.ndarray
    #: parametric slot name per coupling position (``share[processor[...]]``)
    share_names: List[str]
    #: dense coupling coefficients restricted to the block's columns
    S: np.ndarray
    #: barrier-term count (linear rows + hyperbolics + cones) for the gap rule
    constraint_count: int


@dataclass
class _Decomposition:
    blocks: List[_Block]
    coupling_rows: np.ndarray
    names: List[str]
    capacities: np.ndarray
    participants: np.ndarray

    @property
    def scale(self) -> np.ndarray:
        return np.maximum(1.0, np.abs(self.capacities))


def _slice_rows(matrix, rows: np.ndarray, start: int, stop: int):
    """Rows × column-range submatrix for either CSR or dense storage."""
    return matrix[rows][:, start:stop]


def split_blocks(problem: CompiledProblem) -> Optional[_Decomposition]:
    """Split a compiled problem along its :class:`BlockStructure`.

    Returns ``None`` when the problem carries no usable structure (fewer
    than two blocks) — the caller then degenerates to the joint solve.
    Each block's compiled problem owns fresh copies of its matrices; in
    particular ``c`` and ``h`` are mutable without touching the joint
    program (the fit phase tilts ``c``, the share slots rewrite ``h``).
    """
    structure = problem.block_structure
    if structure is None or structure.num_blocks < 2:
        return None

    coupling_rows = structure.coupling_rows
    all_names = problem.inequality_names
    coupling_names: List[str] = []
    seen = set()
    for row in coupling_rows:
        name = ""
        if row < len(all_names):
            name = all_names[row] or ""
        if not name or name in seen:
            name = f"row{int(row)}"
        seen.add(name)
        coupling_names.append(name)
    capacities = np.asarray(problem.h[coupling_rows], dtype=float).copy()

    G = problem.G_sparse if problem.G_sparse is not None else problem.G
    A = problem.A_sparse if problem.A_sparse is not None else problem.A
    Gc = G[coupling_rows] if coupling_rows.size else None
    row_blocks = structure.row_blocks
    equality_blocks = structure.equality_blocks

    blocks: List[_Block] = []
    participants = np.zeros(coupling_rows.size, dtype=int)
    for index, (start, stop) in enumerate(structure.ranges):
        width = stop - start
        private_rows = np.flatnonzero(row_blocks == index)
        Gb = _slice_rows(G, private_rows, start, stop)
        h_private = np.asarray(problem.h[private_rows], dtype=float)
        private_names = [
            all_names[r] if r < len(all_names) else "" for r in private_rows
        ]

        if coupling_rows.size:
            Cb = Gc[:, start:stop]
            if _sparse is not None and _sparse.issparse(Cb):
                Cb = Cb.tocsr()
                support = np.flatnonzero(np.diff(Cb.indptr) > 0)
                S = np.asarray(Cb[support].toarray(), dtype=float)
            else:
                Cb = np.asarray(Cb, dtype=float)
                support = np.flatnonzero(np.any(Cb != 0.0, axis=1))
                S = Cb[support].copy()
        else:
            support = np.zeros(0, dtype=int)
            S = np.zeros((0, width))
        participants[support] += 1

        taken = set(name for name in private_names if name)
        share_names = []
        for position in support:
            name = f"share[{coupling_names[position]}]"
            while name in taken:
                name += "'"
            taken.add(name)
            share_names.append(name)

        if _sparse is not None and _sparse.issparse(Gb):
            G_block = _sparse.vstack(
                [Gb, _sparse.csr_matrix(S, shape=(len(support), width))],
                format="csr",
            )
        else:
            G_block = np.vstack([np.asarray(Gb, dtype=float), S])
        h_block = np.concatenate([h_private, capacities[support]])

        if equality_blocks.size:
            eq_rows = np.flatnonzero(equality_blocks == index)
        else:
            eq_rows = np.zeros(0, dtype=int)
        A_block = _slice_rows(A, eq_rows, start, stop)
        b_block = np.asarray(problem.b[eq_rows], dtype=float).copy()

        hyper = [
            CompiledHyperbolic(
                p=np.asarray(h.p[start:stop], dtype=float).copy(),
                p0=h.p0,
                q=np.asarray(h.q[start:stop], dtype=float).copy(),
                q0=h.q0,
                bound=h.bound,
                name=h.name,
            )
            for h, blk in zip(problem.hyperbolic, structure.hyperbolic_blocks)
            if blk == index
        ]
        cones = [
            CompiledCone(
                A=np.asarray(c.A[:, start:stop], dtype=float).copy(),
                b=np.asarray(c.b, dtype=float).copy(),
                c=np.asarray(c.c[start:stop], dtype=float).copy(),
                d=c.d,
                name=c.name,
            )
            for c, blk in zip(problem.cones, structure.cone_blocks)
            if blk == index
        ]

        compiled = CompiledProblem(
            variables=list(problem.variables[start:stop]),
            c=np.asarray(problem.c[start:stop], dtype=float).copy(),
            c0=0.0,
            G=G_block,
            h=h_block,
            A=A_block,
            b=b_block,
            hyperbolic=hyper,
            cones=cones,
            inequality_names=list(private_names) + share_names,
        )
        blocks.append(
            _Block(
                index=index,
                start=start,
                stop=stop,
                compiled=compiled,
                coupling=support,
                share_names=share_names,
                S=S,
                constraint_count=h_block.size + len(hyper) + len(cones),
            )
        )

    return _Decomposition(
        blocks=blocks,
        coupling_rows=coupling_rows,
        names=coupling_names,
        capacities=capacities,
        participants=np.maximum(participants, 1),
    )


# ---------------------------------------------------------------------------
# per-block worker
# ---------------------------------------------------------------------------

@dataclass
class _Report:
    """One subproblem solve, reduced to what the coordinator needs."""

    index: int
    status: str
    usage: Optional[np.ndarray]
    objective: float


class _BlockWorker:
    """Owns one block's warm-started solve session and its objective tilt."""

    def __init__(self, block: _Block, options: Mapping[str, object]) -> None:
        self.block = block
        parametric = ParametricProblem.from_compiled(
            block.compiled, name=f"block[{block.index}]"
        )
        for name in block.share_names:
            parametric.register_rhs(name, name)
        self._options: Dict[str, object] = dict(options)
        self.session = SolveSession(
            parametric, backend="barrier", options=self._options
        )
        self._c_orig = block.compiled.c.copy()
        self._last_x: Optional[np.ndarray] = None

    def _apply_shares(self, shares) -> None:
        self.session.parametric.set_many(
            {
                name: float(value)
                for name, value in zip(self.block.share_names, shares)
            }
        )

    def _report(self, solution: Solution) -> _Report:
        usage = None
        objective = math.nan
        if solution.values:
            compiled = self.block.compiled
            x = np.array(
                [solution.values[var] for var in compiled.variables]
            )
            self._last_x = x
            usage = self.block.S @ x
            objective = float(self._c_orig @ x)
        return _Report(
            index=self.block.index,
            status=solution.status.value,
            usage=usage,
            objective=objective,
        )

    def prime(self, shares, seed=None) -> _Report:
        """Full solve under the given shares (standalone optimum)."""
        self._apply_shares(shares)
        self._options.pop("centering_barrier", None)
        if seed is not None:
            self.session.seed(np.asarray(seed, dtype=float))
        with obs_span("subproblem", block=self.block.index, stage="prime"):
            solution = self.session.solve()
        return self._report(solution)

    def center(self, t: float, shares) -> _Report:
        """Single warm centering at the coordinator's barrier parameter."""
        self._apply_shares(shares)
        self._options["centering_barrier"] = float(t)
        with obs_span("subproblem", block=self.block.index, stage="center"):
            solution = self.session.solve()
        return self._report(solution)

    def tilt_solve(self, tau: Optional[float], weights, shares) -> _Report:
        """Full solve under an objective tilted toward usage reduction.

        ``weights`` is the coordinator's full coupling-width overload vector;
        ``tau`` scales the tilt relative to the original objective and
        ``None`` means pure usage minimisation.
        """
        self._apply_shares(shares)
        self._options.pop("centering_barrier", None)
        local = np.asarray(weights, dtype=float)[self.block.coupling]
        tilt = self.block.S.T @ local
        c = self.block.compiled.c
        if not np.any(tilt):
            c[:] = self._c_orig
        elif tau is None:
            c[:] = tilt
        else:
            ratio = float(np.linalg.norm(self._c_orig)) or 1.0
            ratio /= float(np.linalg.norm(tilt))
            c[:] = self._c_orig + float(tau) * ratio * tilt
        with obs_span("subproblem", block=self.block.index, stage="fit"):
            solution = self.session.solve()
        return self._report(solution)

    def restore(self) -> None:
        """Drop any objective tilt (the warm point stays valid)."""
        self.block.compiled.c[:] = self._c_orig

    def final_state(self) -> Tuple[Optional[np.ndarray], Dict[str, object]]:
        return self._last_x, self.session.stats.as_dict()


# ---------------------------------------------------------------------------
# fan-out teams
# ---------------------------------------------------------------------------

class _LocalTeam:
    """Runs block workers in-process, serially or over a thread pool."""

    kind = "thread"

    def __init__(
        self,
        blocks: List[_Block],
        options: Mapping[str, object],
        workers: int,
    ) -> None:
        self.workers = [_BlockWorker(block, options) for block in blocks]
        count = min(int(workers), len(blocks))
        self.size = max(1, count)
        self._pool = None
        if count > 1:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=count, thread_name_prefix="decomposed"
            )

    def _run(self, call) -> List[_Report]:
        if self._pool is None:
            return [call(worker) for worker in self.workers]
        futures = [self._pool.submit(call, worker) for worker in self.workers]
        return [future.result() for future in futures]

    def prime(self, shares, seeds) -> List[_Report]:
        return self._run(
            lambda w: w.prime(
                shares[w.block.index], seeds.get(w.block.index)
            )
        )

    def center(self, t, shares) -> List[_Report]:
        return self._run(lambda w: w.center(t, shares[w.block.index]))

    def tilt(self, tau, weights, shares) -> List[_Report]:
        return self._run(
            lambda w: w.tilt_solve(tau, weights, shares[w.block.index])
        )

    def restore(self) -> None:
        for worker in self.workers:
            worker.restore()

    def collect(self) -> Dict[int, Tuple[Optional[np.ndarray], Dict[str, object]]]:
        return {w.block.index: w.final_state() for w in self.workers}

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()


def _worker_loop(connection, blocks, options) -> None:  # pragma: no cover - child process
    """Entry point of one persistent worker process (fixed block affinity)."""
    try:
        options = dict(options)
        fault_plan = options.pop("fault_plan", None)
        if fault_plan is not None:
            from repro.reliability.faults import FaultPlan, install

            install(FaultPlan.from_dict(fault_plan))
        workers = [_BlockWorker(block, options) for block in blocks]
        while True:
            message = connection.recv()
            command = message[0]
            if command == "stop":
                break
            try:
                # Chaos site: ``decomposed.worker`` with ``exit`` kills this
                # team member mid-coordination (→ DecompositionError in the
                # parent → team-rebuild retry, then joint fallback); raising
                # actions are forwarded as a worker error below.
                _maybe_fail("decomposed.worker", label=str(command))
                if command == "prime":
                    shares, seeds = message[1], message[2]
                    payload = [
                        w.prime(shares[w.block.index], seeds.get(w.block.index))
                        for w in workers
                    ]
                elif command == "center":
                    t, shares = message[1], message[2]
                    payload = [
                        w.center(t, shares[w.block.index]) for w in workers
                    ]
                elif command == "tilt":
                    tau, weights, shares = message[1], message[2], message[3]
                    payload = [
                        w.tilt_solve(tau, weights, shares[w.block.index])
                        for w in workers
                    ]
                elif command == "restore":
                    for w in workers:
                        w.restore()
                    payload = []
                elif command == "collect":
                    payload = [
                        (w.block.index, w.final_state()) for w in workers
                    ]
                else:
                    raise ValueError(f"unknown command {command!r}")
                connection.send(("ok", payload))
            except Exception as exc:  # noqa: BLE001 - forwarded to the parent
                connection.send(("error", f"{type(exc).__name__}: {exc}"))
    except (EOFError, KeyboardInterrupt):
        pass
    finally:
        connection.close()


class _ProcessTeam:
    """Persistent worker processes, each owning a fixed group of blocks.

    Affinity matters: a block's warm :class:`SolveSession` lives in exactly
    one process, so every price iteration re-solves it warm.  A transient
    pool with task-stealing (``ProcessPoolExecutor``) would rebuild sessions
    cold whenever a task landed on a different worker.
    """

    kind = "process"

    def __init__(
        self,
        blocks: List[_Block],
        options: Mapping[str, object],
        workers: int,
    ) -> None:
        import multiprocessing

        context = multiprocessing.get_context()
        count = max(1, min(int(workers), len(blocks)))
        self.size = count
        self._links = []
        for lane in range(count):
            group = blocks[lane::count]
            if not group:
                continue
            parent, child = context.Pipe()
            process = context.Process(
                target=_worker_loop,
                args=(child, group, dict(options)),
                daemon=True,
            )
            process.start()
            child.close()
            self._links.append((parent, process))

    def _broadcast(self, *message) -> List:
        for connection, _ in self._links:
            connection.send(message)
        payloads: List = []
        for connection, _ in self._links:
            try:
                kind, payload = connection.recv()
            except (EOFError, OSError) as exc:
                raise DecompositionError(
                    f"decomposed worker process died: {exc}"
                ) from exc
            if kind == "error":
                raise DecompositionError(
                    f"decomposed worker failed: {payload}"
                )
            payloads.extend(payload)
        return payloads

    def prime(self, shares, seeds) -> List[_Report]:
        return self._broadcast("prime", shares, seeds)

    def center(self, t, shares) -> List[_Report]:
        return self._broadcast("center", t, shares)

    def tilt(self, tau, weights, shares) -> List[_Report]:
        return self._broadcast("tilt", tau, weights, shares)

    def restore(self) -> None:
        self._broadcast("restore")

    def collect(self) -> Dict[int, Tuple[Optional[np.ndarray], Dict[str, object]]]:
        return dict(self._broadcast("collect"))

    def close(self) -> None:
        for connection, _ in self._links:
            try:
                connection.send(("stop",))
            except (OSError, ValueError):
                pass
        for connection, process in self._links:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=1.0)
            connection.close()
        self._links = []


# ---------------------------------------------------------------------------
# coordinator
# ---------------------------------------------------------------------------

class _Coordinator:
    """Drives prime → fit → coordinate over a worker team."""

    def __init__(
        self,
        problem: CompiledProblem,
        decomposition: _Decomposition,
        team,
        options: DecomposedOptions,
        barrier_options: Mapping[str, object],
    ) -> None:
        self.problem = problem
        self.decomposition = decomposition
        self.team = team
        self.options = options
        self.tolerance = float(barrier_options.get("tolerance", 1e-7))
        self.initial_barrier = float(
            barrier_options.get("initial_barrier", 1.0)
        )
        self.barrier_increase = float(
            barrier_options.get("barrier_increase", 25.0)
        )
        self.max_rungs = int(barrier_options.get("max_outer_iterations", 60))
        self.price_iterations = 0
        self.rungs = 0
        self.fit_rounds = 0
        self.centering_failures = 0
        self.parallel_time = 0.0
        self.price_residual = math.nan
        self.final_barrier: Optional[float] = None
        self.coordination_skipped = False
        self.shares: Dict[int, np.ndarray] = {}
        self._last_reports: List[_Report] = []

    # -- helpers -----------------------------------------------------------
    def _timed(self, call, *args):
        started = perf_counter()
        result = call(*args)
        self.parallel_time += perf_counter() - started
        return result

    def _aggregate(self, reports: List[_Report]) -> np.ndarray:
        usage = np.zeros(self.decomposition.capacities.size)
        for report in reports:
            if report.usage is None:
                raise DecompositionError(
                    f"block {report.index} returned no point "
                    f"(status {report.status})"
                )
            usage[self.decomposition.blocks[report.index].coupling] += (
                report.usage
            )
        return usage

    def _objective(self, reports: List[_Report]) -> float:
        return float(
            sum(report.objective for report in reports) + self.problem.c0
        )

    def _full_shares(self) -> Dict[int, np.ndarray]:
        return {
            block.index: self.decomposition.capacities[block.coupling].copy()
            for block in self.decomposition.blocks
        }

    def _redistributed(
        self, reports: List[_Report], usage: np.ndarray
    ) -> Dict[int, np.ndarray]:
        slack = self.decomposition.capacities - usage
        if np.any(slack <= 0.0):
            raise DecompositionError("shared-capacity slack collapsed")
        bonus = slack / self.decomposition.participants
        shares: Dict[int, np.ndarray] = {}
        by_index = {report.index: report for report in reports}
        for block in self.decomposition.blocks:
            report = by_index[block.index]
            shares[block.index] = report.usage + bonus[block.coupling]
        return shares

    # -- phases ------------------------------------------------------------
    def prime(
        self, initial_point: Optional[np.ndarray]
    ) -> Tuple[List[_Report], np.ndarray]:
        seeds: Dict[int, np.ndarray] = {}
        if initial_point is not None:
            vector = np.asarray(initial_point, dtype=float)
            for block in self.decomposition.blocks:
                seeds[block.index] = vector[block.start:block.stop]
        with obs_span("decomposed-prime", blocks=len(self.decomposition.blocks)):
            reports = self._timed(self.team.prime, self._full_shares(), seeds)
        for report in reports:
            if report.status == SolverStatus.INFEASIBLE.value:
                raise _BlockInfeasible(report.index)
            if report.usage is None:
                raise DecompositionError(
                    f"block {report.index} prime solve ended with "
                    f"status {report.status}"
                )
        return reports, self._aggregate(reports)

    def _infeasibility_certificate(self) -> Optional[str]:
        """Bound-based proof that a coupling row can never be satisfied."""
        dec = self.decomposition
        floor = np.zeros(dec.capacities.size)
        for block in dec.blocks:
            lows = np.array(
                [
                    -math.inf if v.lower is None else v.lower
                    for v in block.compiled.variables
                ]
            )
            highs = np.array(
                [
                    math.inf if v.upper is None else v.upper
                    for v in block.compiled.variables
                ]
            )
            with np.errstate(invalid="ignore"):
                contribution = np.where(
                    block.S > 0.0, block.S * lows, block.S * highs
                )
            # Zero coefficients contribute nothing (0·∞ above is NaN).
            contribution = np.where(block.S != 0.0, contribution, 0.0)
            floor[block.coupling] += contribution.sum(axis=1)
        with np.errstate(invalid="ignore"):
            hopeless = floor > dec.capacities + 1e-12 * dec.scale
        if np.any(hopeless):
            row = int(np.flatnonzero(hopeless)[0])
            return (
                f"shared capacity row {dec.names[row]!r} cannot be "
                f"satisfied: variable bounds force usage ≥ {floor[row]:.6g} "
                f"> capacity {dec.capacities[row]:.6g}"
            )
        return None

    def fit(
        self, reports: List[_Report], usage: np.ndarray
    ) -> Tuple[List[_Report], np.ndarray]:
        """Tilt objectives until a strictly feasible capacity split exists."""
        dec = self.decomposition
        certificate = self._infeasibility_certificate()
        if certificate is not None:
            raise _ProvenInfeasible(certificate)
        full = self._full_shares()
        with obs_span("decomposed-fit"):
            for tau in _FIT_TAUS[: max(1, self.options.fit_rounds)]:
                overload = np.maximum(0.0, usage - dec.capacities) / dec.scale
                peak = float(overload.max())
                if peak > 0.0:
                    weights = overload / peak
                else:
                    # Usage touches a capacity exactly; push on those rows.
                    weights = (usage >= dec.capacities).astype(float)
                reports = self._timed(self.team.tilt, tau, weights, full)
                self.fit_rounds += 1
                usage = self._aggregate(reports)
                if np.all(usage < dec.capacities):
                    break
            else:
                raise DecompositionError(
                    "no strictly feasible capacity split found within the "
                    "fit budget"
                )
        self._timed(self.team.restore)
        return reports, usage

    def coordinate(
        self, reports: List[_Report], usage: np.ndarray
    ) -> List[_Report]:
        """Climb the rung ladder, equalizing slacks at every rung."""
        self.shares = self._redistributed(reports, usage)
        t = self.initial_barrier
        with obs_span("decomposed-coordination"):
            while True:
                self.rungs += 1
                reports = self._equalize(t, self.options.inner_tolerance)
                gap_scale = max(1.0, abs(self._objective(reports)))
                m_total = sum(
                    block.constraint_count for block in self.decomposition.blocks
                )
                if m_total / t < self.tolerance * gap_scale:
                    if not self.options.polish:
                        # No joint polish will follow: spend extra iterations
                        # tightening the price agreement at the final rung.
                        reports = self._equalize(
                            t, self.options.price_tolerance
                        )
                    self.final_barrier = t
                    return reports
                if self.rungs >= self.max_rungs:
                    raise DecompositionError(
                        "price coordination exhausted its rung budget"
                    )
                t *= self.barrier_increase

    def _row_members(self) -> List[List[Tuple[int, int]]]:
        """Per coupling row: the (block index, local position) pairs using it."""
        members: List[List[Tuple[int, int]]] = [
            [] for _ in range(self.decomposition.capacities.size)
        ]
        for block in self.decomposition.blocks:
            for local, row in enumerate(block.coupling):
                members[int(row)].append((block.index, local))
        return members

    def _equalize(self, t: float, tolerance: float) -> List[_Report]:
        """Center all blocks at ``t`` and re-split until the prices agree.

        At synchronized ``t`` the share-row price of block ``b`` on row ``r``
        is ``1/(t·slack_{b,r})``, so equal slack ⟺ equal price; the loop
        transfers share between blocks until the per-row slack disparity
        drops below ``tolerance``.  The plain equal-slack step contracts like
        ``1 − O(1/t)`` (the centered usage tracks the share ever more closely
        as ``t`` grows), so each block's usage response is estimated by a
        per-row secant and the transfer is divided by it — restoring traction
        at high rungs.  Updates always preserve ``Σ shares = capacity``
        exactly and keep every block strictly above its current usage.
        """
        dec = self.decomposition
        members = self._row_members()
        reports = self._last_reports
        residuals = metrics.histogram("decomposed.price_residual")
        rho: Dict[int, np.ndarray] = {
            block.index: np.ones(len(block.coupling)) for block in dec.blocks
        }
        previous_shares: Optional[Dict[int, np.ndarray]] = None
        previous_usage: Optional[Dict[int, np.ndarray]] = None
        best = math.inf
        stalled = 0
        for _ in range(max(1, self.options.max_inner_iterations)):
            if self.price_iterations >= self.options.max_price_iterations:
                raise DecompositionError(
                    "price coordination exhausted its iteration budget"
                )
            with obs_span("price-iteration", barrier=float(t)):
                reports = self._timed(self.team.center, t, self.shares)
            self.price_iterations += 1
            metrics.counter("decomposed.price_iterations").inc()
            usage_by_block: Dict[int, np.ndarray] = {}
            for report in reports:
                if report.status not in (
                    SolverStatus.OPTIMAL.value,
                    SolverStatus.MAX_ITERATIONS.value,
                ):
                    raise DecompositionError(
                        f"block {report.index} centering ended with "
                        f"status {report.status}"
                    )
                if report.status == SolverStatus.MAX_ITERATIONS.value:
                    self.centering_failures += 1
                usage_by_block[report.index] = report.usage
            self._last_reports = reports
            total = self._aggregate(reports)
            if np.any(dec.capacities - total <= 0.0):
                raise DecompositionError("shared-capacity slack collapsed")

            # Secant estimate of each share row's slack response
            # ρ = 1 − du/dy ∈ (0, 1]; small ρ means the block swallows almost
            # the whole share change, so the transfer is amplified by 1/ρ.
            if previous_shares is not None:
                for block in dec.blocks:
                    dy = self.shares[block.index] - previous_shares[block.index]
                    du = usage_by_block[block.index] - previous_usage[block.index]
                    scale = dec.scale[block.coupling]
                    with np.errstate(divide="ignore", invalid="ignore"):
                        estimate = 1.0 - du / dy
                    usable = (
                        np.isfinite(estimate)
                        & (np.abs(dy) > 1e-13 * scale)
                        & (estimate > 1e-9)
                        & (estimate <= 1.0)
                    )
                    rho[block.index] = np.where(
                        usable, estimate, rho[block.index]
                    )
            previous_shares = {
                index: value.copy() for index, value in self.shares.items()
            }
            previous_usage = {
                index: value.copy() for index, value in usage_by_block.items()
            }

            # Per-row weighted equalization: common slack target
            # s̄ = (Σ s/ρ)/(Σ 1/ρ), transfer δ = (s̄ − s)/ρ (Σ δ = 0).
            disparity = 0.0
            delta = 0.0
            for row, row_members in enumerate(members):
                if len(row_members) < 2:
                    continue
                slacks = np.array(
                    [
                        self.shares[index][local]
                        - usage_by_block[index][local]
                        for index, local in row_members
                    ]
                )
                if np.any(slacks <= 0.0):
                    raise DecompositionError("block share slack collapsed")
                weights = np.array(
                    [1.0 / rho[index][local] for index, local in row_members]
                )
                target = float((slacks * weights).sum() / weights.sum())
                steps = (target - slacks) * weights
                # Keep every block strictly above its current usage: cap the
                # donors at 90% of their slack, scaling the whole row's
                # transfer so Σ δ stays exactly 0.
                factor = 1.0
                for step, slack in zip(steps, slacks):
                    if step < 0.0:
                        factor = min(factor, 0.9 * slack / -step)
                mean = float(slacks.mean())
                disparity = max(
                    disparity,
                    float((slacks.max() - slacks.min()) / max(mean, 1e-300)),
                )
                for (index, local), step in zip(row_members, steps):
                    self.shares[index][local] += factor * step
                    delta = max(
                        delta, abs(factor * step) / dec.scale[row]
                    )
            self.price_residual = disparity
            residuals.observe(disparity)
            if disparity < tolerance:
                break
            if disparity > 0.7 * best:
                stalled += 1
                if stalled >= 3:
                    break
            else:
                stalled = 0
            best = min(best, disparity)
        return reports

    def prices(self) -> Dict[str, float]:
        """Shadow price per coupling row implied by the final slacks."""
        dec = self.decomposition
        if self.final_barrier is None or not self._last_reports:
            return {name: 0.0 for name in dec.names}
        usage = self._aggregate(self._last_reports)
        slack = np.maximum(dec.capacities - usage, 1e-300)
        values = dec.participants / (self.final_barrier * slack)
        return {
            name: float(price) for name, price in zip(dec.names, values)
        }


class _BlockInfeasible(Exception):
    """A block is infeasible even with the full capacities to itself."""

    def __init__(self, index: int) -> None:
        super().__init__(index)
        self.index = index


class _ProvenInfeasible(Exception):
    """A coupling row is provably unsatisfiable (bound certificate)."""


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def _joint_barrier_solve(
    problem: CompiledProblem,
    initial_point: Optional[np.ndarray],
    options: Mapping[str, object],
) -> Solution:
    from repro.solver.backends import _barrier_options
    from repro.solver.barrier import solve_with_barrier

    return solve_with_barrier(
        problem,
        initial_point=initial_point,
        options=_barrier_options(dict(options)),
    )


def solve_decomposed(
    problem: CompiledProblem,
    initial_point: Optional[np.ndarray] = None,
    options: Optional[Mapping[str, object]] = None,
) -> Solution:
    """Solve a block-structured compiled problem by price coordination.

    Falls back to the joint barrier solve (flagged in ``stats
    ["decomposed_fallback"]``) when the problem carries no block structure
    or coordination fails; the returned :class:`Solution` is therefore
    always as trustworthy as the joint path.
    """
    started = perf_counter()
    raw = dict(options or {})
    opts, barrier_options = DecomposedOptions.from_mapping(raw)
    x0 = (
        None
        if initial_point is None
        else np.asarray(initial_point, dtype=float)
    )

    decomposition = split_blocks(problem)
    if decomposition is None:
        solution = _joint_barrier_solve(problem, x0, barrier_options)
        solution.stats = dict(solution.stats)
        solution.stats["decomposed_degenerate"] = True
        solution.backend = "decomposed"
        return solution

    blocks = decomposition.blocks
    # Per-block full solves use a tolerance tightened by the block count so
    # the *summed* duality gaps of the coordination-skipped fast path stay
    # within the joint tolerance; warm sessions keep tiny boundary slacks
    # usable by lowering the phase-I skip margin.
    block_options = dict(barrier_options)
    base_tolerance = float(block_options.get("tolerance", 1e-7))
    block_options["tolerance"] = max(
        1e-12, base_tolerance / len(blocks)
    )
    block_options.setdefault("feasibility_margin", 1e-12)

    use_processes = opts.fanout == "process" and int(opts.workers) > 1
    if use_processes:
        # Process workers arm the parent's fault plan (chaos tests inject
        # crashes into team members); the plan rides the per-block options.
        parent_plan = _active_fault_plan()
        if parent_plan is not None:
            block_options["fault_plan"] = parent_plan.to_dict()

    def make_team():
        if use_processes:
            return _ProcessTeam(blocks, block_options, int(opts.workers))
        return _LocalTeam(blocks, block_options, int(opts.workers))

    def fallback_solution(
        stats: Dict[str, object], exc: NumericalError
    ) -> Solution:
        metrics.counter("decomposed.fallbacks").inc()
        if not opts.fallback:
            stats["decomposed_fallback"] = str(exc)
            return Solution(
                status=SolverStatus.NUMERICAL_ERROR,
                backend="decomposed",
                message=str(exc),
                stats=stats,
            )
        solution = _joint_barrier_solve(problem, x0, barrier_options)
        solution.stats = dict(solution.stats)
        solution.stats.update(stats)
        solution.stats["decomposed_fallback"] = str(exc)
        solution.backend = "decomposed"
        return solution

    metrics.counter("decomposed.solves").inc()
    # A dead worker process (DecompositionError) loses its blocks' warm
    # sessions, so the coordination cannot be resumed — but it *can* be
    # restarted: one retry with a freshly spawned team absorbs a transient
    # crash before degrading to the joint solve.
    team_attempts = 2 if use_processes else 1
    for team_attempt in range(team_attempts):
        team = make_team()
        coordinator = _Coordinator(
            problem, decomposition, team, opts, barrier_options
        )
        stats: Dict[str, object] = {
            "decomposed_blocks": len(blocks),
            "decomposed_workers": int(team.size),
            "decomposed_fanout": team.kind,
            "decomposed_coupling_rows": int(decomposition.capacities.size),
            "decomposed_fallback": None,
        }
        polish_solution: Optional[Solution] = None
        polish_time = 0.0
        try:
            try:
                with obs_span(
                    "decomposed", blocks=len(blocks), workers=int(team.size)
                ):
                    reports, usage = coordinator.prime(x0)
                    coordinator._last_reports = reports
                    fits = bool(np.all(usage < decomposition.capacities))
                    if fits:
                        # The coupling is inactive at the standalone optima:
                        # their union is the joint optimum and no coordination
                        # is needed.
                        coordinator.coordination_skipped = True
                    else:
                        reports, usage = coordinator.fit(reports, usage)
                        coordinator._last_reports = reports
                        reports = coordinator.coordinate(reports, usage)
                collected = coordinator._timed(team.collect)
                merged = SessionStats(compiles=0)
                x = np.zeros(problem.num_variables)
                for block in blocks:
                    vector, session_stats = collected[block.index]
                    if vector is None:
                        raise DecompositionError(
                            f"block {block.index} finished without a point"
                        )
                    x[block.start:block.stop] = vector
                    merged.merge(SessionStats(**session_stats))
                if opts.polish and not coordinator.coordination_skipped:
                    # Lock the coordinated point to the joint optimum: one
                    # warm-started joint solve (phase I skipped off the
                    # strictly feasible assembled point, ladder restarted a
                    # few rungs below the coordinated one).
                    polish_options = dict(barrier_options)
                    if coordinator.final_barrier is not None:
                        increase = float(
                            polish_options.get("barrier_increase", 25.0)
                        )
                        polish_options.setdefault(
                            "warm_initial_barrier",
                            max(1.0, coordinator.final_barrier / increase**2),
                        )
                    polish_started = perf_counter()
                    with obs_span("decomposed-polish"):
                        polish_solution = _joint_barrier_solve(
                            problem, x, polish_options
                        )
                    polish_time = perf_counter() - polish_started
                    if not polish_solution.is_optimal:
                        raise DecompositionError(
                            f"joint polish ended with status "
                            f"{polish_solution.status.value}"
                        )
            except _BlockInfeasible as exc:
                stats["phase1_time"] = coordinator.parallel_time
                return Solution(
                    status=SolverStatus.INFEASIBLE,
                    backend="decomposed",
                    message=(
                        f"application block {exc.index} is infeasible even "
                        f"with the full shared capacities to itself"
                    ),
                    stats=stats,
                )
            except _ProvenInfeasible as exc:
                stats["phase1_time"] = coordinator.parallel_time
                return Solution(
                    status=SolverStatus.INFEASIBLE,
                    backend="decomposed",
                    message=str(exc),
                    stats=stats,
                )
        except DecompositionError as exc:
            if team_attempt + 1 < team_attempts:
                metrics.counter("decomposed.retries").inc()
                metrics.counter("reliability.retries").inc()
                continue
            return fallback_solution(stats, exc)
        except NumericalError as exc:
            return fallback_solution(stats, exc)
        finally:
            team.close()
        break

    total_time = perf_counter() - started
    stats.update(
        {
            "price_iterations": coordinator.price_iterations,
            "price_rungs": coordinator.rungs,
            "price_residual": coordinator.price_residual,
            "fit_rounds": coordinator.fit_rounds,
            "coordination_skipped": coordinator.coordination_skipped,
            "centering_failures": coordinator.centering_failures,
            "subproblem_solves": merged.solves,
            "newton_iterations": merged.newton_iterations,
            "phase1_newton_iterations": merged.phase1_newton_iterations,
            "phase1_skipped": merged.phase1_skipped,
            "warm_started": merged.warm_started,
            "final_barrier": coordinator.final_barrier,
            "prices": coordinator.prices(),
            "parallel_time": coordinator.parallel_time,
            "serial_solve_time": merged.solve_time,
            "parallel_speedup": (
                merged.solve_time / coordinator.parallel_time
                if coordinator.parallel_time > 0.0
                else 1.0
            ),
            "total_time": total_time,
            "sessions": merged.as_dict(),
        }
    )
    metrics.counter("decomposed.subproblem_solves").inc(merged.solves)
    metrics.histogram("decomposed.solve_seconds").observe(total_time)

    if polish_solution is not None:
        stats["joint_polish"] = True
        stats["polish_time"] = polish_time
        stats["polish_newton_iterations"] = polish_solution.stats.get(
            "newton_iterations"
        )
        stats["polish_phase1_skipped"] = polish_solution.stats.get(
            "phase1_skipped"
        )
        return Solution(
            status=SolverStatus.OPTIMAL,
            objective=polish_solution.objective,
            values=polish_solution.values,
            backend="decomposed",
            iterations=coordinator.price_iterations,
            stats=stats,
        )

    return Solution(
        status=SolverStatus.OPTIMAL,
        objective=problem.objective_value(x),
        values=problem.point_as_mapping(x),
        backend="decomposed",
        iterations=coordinator.price_iterations,
        stats=stats,
    )
