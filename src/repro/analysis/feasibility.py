"""Fast feasibility screening of configurations.

These checks are *necessary* conditions derived in closed form; they run in
linear time and let callers reject hopeless configurations (or explain
infeasibility) without invoking the cone solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.taskgraph.configuration import Configuration


@dataclass
class FeasibilityScreen:
    """Result of the closed-form feasibility screening."""

    processor_load: Dict[str, float] = field(default_factory=dict)
    memory_load: Dict[str, float] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    @property
    def may_be_feasible(self) -> bool:
        """False only when a necessary condition is violated."""
        return not self.violations


def screen_configuration(configuration: Configuration) -> FeasibilityScreen:
    """Evaluate closed-form necessary conditions for the joint problem.

    * Per processor, the sum of the throughput-implied minimum budgets
      ``̺·χ/µ`` plus one granule of rounding slack per task plus the
      scheduling overhead must fit in the replenishment interval
      (Constraint (9) with the smallest possible budgets).
    * Per bounded memory, the smallest feasible buffer capacities plus one
      container of rounding slack per buffer must fit (Constraint (10) with
      the smallest possible capacities).
    """
    screen = FeasibilityScreen()
    platform = configuration.platform
    g = configuration.granularity

    for processor_name, processor in platform.processors.items():
        demand = processor.scheduling_overhead
        for graph in configuration.task_graphs:
            for task in graph.tasks:
                if task.processor != processor_name:
                    continue
                minimum = processor.replenishment_interval * task.wcet / graph.period
                if task.min_budget is not None:
                    minimum = max(minimum, task.min_budget)
                demand += minimum + g
        load = demand / processor.replenishment_interval
        screen.processor_load[processor_name] = load
        if load > 1.0 + 1e-12:
            screen.violations.append(
                f"processor {processor_name!r}: minimum budget demand is "
                f"{load:.3f}× its replenishment interval"
            )

    for memory_name, memory in platform.memories.items():
        if not memory.is_bounded:
            continue
        demand = 0.0
        for _, buffer in configuration.all_buffers():
            if buffer.memory != memory_name:
                continue
            demand += buffer.storage_for(buffer.smallest_feasible_capacity + 1)
        load = demand / memory.capacity
        screen.memory_load[memory_name] = load
        if load > 1.0 + 1e-12:
            screen.violations.append(
                f"memory {memory_name!r}: minimum buffer demand is {load:.3f}× its capacity"
            )
    return screen
