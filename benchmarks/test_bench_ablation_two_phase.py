"""Ablation A1: joint computation vs. the classical two-phase flow.

This quantifies the motivating claim of the paper's introduction: computing
budgets and buffer capacities in two separate phases either over-allocates
one resource or fails outright (a false negative), while the joint SOCP finds
the balanced mapping.  The scenario is the producer-consumer job under memory
pressure (room for at most 6 containers).
"""

from __future__ import annotations


import pytest

from repro.baselines import TwoPhaseOrder, run_two_phase
from repro.core import AllocatorOptions, JointAllocator, ObjectiveWeights
from repro.taskgraph.generators import producer_consumer_configuration


def _scenario():
    return producer_consumer_configuration(memory_capacity=7.0)


def _run_all_flows():
    config = _scenario()
    allocator = JointAllocator(
        weights=ObjectiveWeights.prefer_budgets(),
        options=AllocatorOptions(run_simulation=False),
    )
    joint = allocator.allocate(config)
    budget_first = run_two_phase(config, TwoPhaseOrder.BUDGET_FIRST)
    buffer_first = run_two_phase(config, TwoPhaseOrder.BUFFER_FIRST)
    return joint, budget_first, buffer_first


@pytest.mark.benchmark(group="ablation-two-phase")
def test_joint_vs_two_phase_under_memory_pressure(benchmark, record_series):
    joint, budget_first, buffer_first = benchmark(_run_all_flows)

    joint_budget = sum(joint.budgets.values())
    record_series(benchmark, "joint_total_budget_mcycles", round(joint_budget, 3))
    record_series(
        benchmark, "joint_total_containers", sum(joint.buffer_capacities.values())
    )
    record_series(benchmark, "budget_first_feasible", budget_first.feasible)
    record_series(benchmark, "buffer_first_feasible", buffer_first.feasible)
    record_series(
        benchmark,
        "buffer_first_total_budget_mcycles",
        None if not buffer_first.feasible else round(buffer_first.total_budget, 3),
    )

    # The joint flow finds a mapping within the memory bound...
    assert joint.total_storage("m1") <= 7.0
    # ...the budget-first flow reports a false negative (its 10-container
    # buffer does not fit)...
    assert not budget_first.feasible
    # ...and the buffer-first flow over-allocates processor budget by a wide
    # margin compared to the joint solution.
    assert buffer_first.feasible
    assert buffer_first.total_budget > joint_budget * 1.5
