"""Drivers that regenerate the paper's figures (Section V)."""

from repro.experiments.figure2 import Figure2Result, run_figure2
from repro.experiments.figure3 import Figure3Result, run_figure3
from repro.experiments.runner import run_all

__all__ = [
    "Figure2Result",
    "Figure3Result",
    "run_all",
    "run_figure2",
    "run_figure3",
]
