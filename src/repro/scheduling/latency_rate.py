"""Latency-rate characterisation of budget schedulers.

A budget scheduler guarantees a task a budget of ``β`` cycles in every
replenishment interval of ``̺`` cycles, independent of other tasks.  Such a
guarantee makes the scheduler a *latency-rate server* with

* latency ``Θ = ̺ − β`` — the longest interval in which the task may receive
  no service at all, and
* rate ``r = β / ̺`` — the guaranteed long-term fraction of the processor.

The worst-case time to serve ``χ`` cycles of work is then ``Θ + χ / r =
(̺ − β) + ̺·χ / β``, which is exactly the sum of the firing durations of the
two actors that model a task in the paper's dataflow construction
(Section II-C).  This module makes that correspondence explicit and provides
the bound as a reusable object.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ModelError


@dataclass(frozen=True)
class LatencyRateServer:
    """A latency-rate service guarantee ``(Θ, r)``."""

    latency: float
    rate: float

    def __post_init__(self) -> None:
        if self.latency < 0.0:
            raise ModelError(f"latency must be non-negative, got {self.latency!r}")
        if not 0.0 < self.rate <= 1.0:
            raise ModelError(f"rate must be in (0, 1], got {self.rate!r}")

    @classmethod
    def from_budget(cls, budget: float, replenishment_interval: float) -> "LatencyRateServer":
        """Latency-rate guarantee of a budget scheduler allocation."""
        if replenishment_interval <= 0.0:
            raise ModelError("replenishment interval must be positive")
        if not 0.0 < budget <= replenishment_interval:
            raise ModelError(
                f"budget must lie in (0, {replenishment_interval}], got {budget!r}"
            )
        return cls(
            latency=replenishment_interval - budget,
            rate=budget / replenishment_interval,
        )

    def worst_case_completion(self, work: float) -> float:
        """Worst-case time to complete ``work`` cycles of execution."""
        if work < 0.0:
            raise ModelError("work must be non-negative")
        return self.latency + work / self.rate

    def busy_period_service(self, interval: float) -> float:
        """Guaranteed service (cycles) within a busy interval of the given length."""
        if interval < 0.0:
            raise ModelError("interval must be non-negative")
        return max(0.0, (interval - self.latency) * self.rate)


def required_budget_for_completion(
    work: float, deadline: float, replenishment_interval: float
) -> float:
    """Smallest budget whose latency-rate bound meets a completion deadline.

    Solves ``(̺ − β) + ̺·work/β ≤ deadline`` for ``β``; raises
    :class:`~repro.exceptions.ModelError` when even a full budget
    (``β = ̺``) cannot meet the deadline.
    """
    if work <= 0.0:
        raise ModelError("work must be positive")
    if deadline <= 0.0:
        raise ModelError("deadline must be positive")
    if replenishment_interval <= 0.0:
        raise ModelError("replenishment interval must be positive")
    # Full budget gives completion time exactly `work`.
    if work > deadline:
        raise ModelError(
            f"work {work} exceeds the deadline {deadline}; no budget suffices"
        )
    # (̺ − β) + ̺·work/β ≤ deadline  ⇔  β² − (̺ − deadline)·β − ̺·work ≥ 0 ... solve
    # β ≥ [ (̺ − deadline) + sqrt((̺ − deadline)² + 4·̺·work) ] / 2
    import math

    rho = replenishment_interval
    discriminant = (rho - deadline) ** 2 + 4.0 * rho * work
    beta = 0.5 * ((rho - deadline) + math.sqrt(discriminant))
    return min(max(beta, 0.0), rho)
