"""Declarative campaign specifications.

A *campaign* describes a family of allocation problems — parameter sweeps
over the synthetic generators of :mod:`repro.taskgraph.generators` and/or
explicit JSON configurations — that the batch engine solves as one unit of
work.  Campaigns are plain JSON documents so that large design-space
explorations can be versioned next to their results and re-run bit-for-bit.

The schema (``format_version`` 1)::

    {
      "name": "smoke",                  // campaign name (used in reports)
      "seed": 7,                        // master seed for derived instance seeds
      "backend": "auto",                // solver backend for every item
      "weights": "prefer-budgets",      // objective preset for every item
      "entries": [
        // a generator sweep: the cartesian product of the "sweep" axes,
        // merged over the fixed "params"
        {"generator": "chain", "params": {"wcet": 1.0},
         "sweep": {"stages": [2, 3, 4]}},

        // "count" draws that many instance seeds from the campaign seed
        // (only for generators with a "seed" parameter)
        {"generator": "random_dag",
         "params": {"task_count": 8, "processor_count": 8}, "count": 25},

        // an explicit configuration, optionally swept over a common
        // per-buffer capacity bound ("low:high" or a list)
        {"configuration_path": "configs/decoder.json", "capacity_sweep": "1:10"},

        // a multi-application workload (inline or by path), solved jointly
        // on its shared platform; capacity_sweep bounds every buffer of
        // every application
        {"workload_path": "workloads/set-top-box.json", "capacity_sweep": [2, 4, 8]},

        // an admission trace (inline or by path): an arrival/departure
        // event sequence replayed through the incremental session API,
        // reporting per-event admit/reject verdicts and the final state
        {"trace_path": "traces/evening.json"}
      ]
    }

Every entry expands deterministically: the same campaign document and seed
always produce the same ordered list of :class:`CampaignItem` objects, which
is what makes the result cache and the N-worker/1-worker equivalence
guarantees of :mod:`repro.batch.executor` possible.
"""

from __future__ import annotations

import inspect
import itertools
import json
import random
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.exceptions import ModelError
from repro.taskgraph import serialization
from repro.taskgraph.configuration import Configuration
from repro.taskgraph.workload import (
    Workload,
    load_workload,
    workload_from_dict,
    workload_to_dict,
)
from repro.taskgraph.generators import (
    chain_configuration,
    csdf_chain_configuration,
    fork_join_configuration,
    heterogeneous_random_configuration,
    multi_job_configuration,
    producer_consumer_configuration,
    random_dag_configuration,
    ring_configuration,
)

FORMAT_VERSION = 1

#: Generator registry: the names usable in a campaign ``"generator"`` field.
GENERATORS = {
    "producer_consumer": producer_consumer_configuration,
    "chain": chain_configuration,
    "fork_join": fork_join_configuration,
    "ring": ring_configuration,
    "random_dag": random_dag_configuration,
    "multi_job": multi_job_configuration,
    "csdf_chain": csdf_chain_configuration,
    "heterogeneous_random": heterogeneous_random_configuration,
}


@dataclass
class CampaignItem:
    """One allocation problem of an expanded campaign.

    Exactly one of: a single ``configuration`` (with optional flat
    ``capacity_limits``), a multi-application ``workload`` (with optional
    *per-application* ``workload_capacity_limits``), or an admission
    ``trace`` (an arrival/departure event sequence replayed through the
    incremental session API).
    """

    label: str
    configuration: Optional[Configuration] = None
    capacity_limits: Optional[Dict[str, int]] = None
    workload: Optional[Workload] = None
    workload_capacity_limits: Optional[Dict[str, Dict[str, int]]] = None
    trace: Optional[object] = None   #: an :class:`repro.core.admission.AdmissionTrace`

    def configuration_dict(self) -> Dict[str, object]:
        """The canonical dictionary form used for hashing and pickling."""
        if self.trace is not None:
            from repro.core.admission import trace_to_dict

            return trace_to_dict(self.trace)
        if self.workload is not None:
            return workload_to_dict(self.workload)
        return serialization.configuration_to_dict(self.configuration)

    def limits(self) -> Optional[Dict[str, object]]:
        """The capacity limits in whichever shape this item carries."""
        if self.trace is not None:
            return None
        if self.workload is not None:
            return self.workload_capacity_limits
        return self.capacity_limits


def parse_capacity_values(value: object) -> List[int]:
    """Parse capacity bounds: ``"low:high"``, ``"2,4,8"``, or a list of ints.

    The single parser behind both the CLI's ``--capacities`` option and the
    campaign ``capacity_sweep`` field, so the two surfaces accept the same
    syntax.  Raises :class:`ValueError` with a human-readable reason; callers
    wrap it in their surface's error type.
    """
    if isinstance(value, str):
        stripped = value.strip()
        if ":" in stripped:
            low_text, _, high_text = stripped.partition(":")
            try:
                low, high = int(low_text), int(high_text)
            except ValueError:
                raise ValueError(
                    "range bounds must be integers, as in '1:10'"
                ) from None
            if low > high:
                raise ValueError(f"low bound {low} exceeds high bound {high}")
            values = list(range(low, high + 1))
        else:
            parts = [part.strip() for part in stripped.split(",")]
            if not all(parts):
                raise ValueError("empty segment in comma-separated list")
            try:
                values = [int(part) for part in parts]
            except ValueError:
                raise ValueError(
                    "capacities must be integers, as in '2,4,8'"
                ) from None
    elif isinstance(value, Sequence):
        try:
            values = [int(v) for v in value]
        except (TypeError, ValueError):
            raise ValueError("entries must be integers") from None
    else:
        raise ValueError("expected a 'low:high' string, a comma list, or a list of integers")
    if not values:
        raise ValueError("must not be empty")
    if any(v < 1 for v in values):
        raise ValueError("capacities must be at least one container")
    return values


def _parse_capacity_sweep(value: object) -> List[int]:
    try:
        return parse_capacity_values(value)
    except ValueError as error:
        raise ModelError(f"malformed capacity_sweep {value!r}: {error}") from None


@dataclass
class CampaignEntry:
    """One entry of a campaign: a generator sweep or an explicit configuration."""

    generator: Optional[str] = None
    params: Dict[str, object] = field(default_factory=dict)
    sweep: Dict[str, List[object]] = field(default_factory=dict)
    count: Optional[int] = None
    configuration: Optional[Dict[str, object]] = None
    configuration_path: Optional[str] = None
    workload: Optional[Dict[str, object]] = None
    workload_path: Optional[str] = None
    trace: Optional[Dict[str, object]] = None
    trace_path: Optional[str] = None
    capacity_sweep: Optional[List[int]] = None

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CampaignEntry":
        known = {
            "generator",
            "params",
            "sweep",
            "count",
            "configuration",
            "configuration_path",
            "workload",
            "workload_path",
            "trace",
            "trace_path",
            "capacity_sweep",
        }
        unknown = set(data) - known
        if unknown:
            raise ModelError(f"unknown campaign entry fields: {sorted(unknown)}")
        sources = [
            key
            for key in (
                "generator",
                "configuration",
                "configuration_path",
                "workload",
                "workload_path",
                "trace",
                "trace_path",
            )
            if data.get(key) is not None
        ]
        if len(sources) != 1:
            raise ModelError(
                "each campaign entry needs exactly one of 'generator', "
                "'configuration', 'configuration_path', 'workload', "
                "'workload_path', 'trace' or 'trace_path'"
            )
        entry = cls(
            generator=data.get("generator"),
            params=dict(data.get("params", {})),
            sweep={name: list(values) for name, values in dict(data.get("sweep", {})).items()},
            count=None if data.get("count") is None else int(data["count"]),
            configuration=data.get("configuration"),
            configuration_path=data.get("configuration_path"),
            workload=data.get("workload"),
            workload_path=data.get("workload_path"),
            trace=data.get("trace"),
            trace_path=data.get("trace_path"),
            capacity_sweep=(
                None
                if data.get("capacity_sweep") is None
                else _parse_capacity_sweep(data["capacity_sweep"])
            ),
        )
        entry._validate()
        return entry

    def _validate(self) -> None:
        if (self.trace is not None or self.trace_path is not None) and (
            self.capacity_sweep is not None
        ):
            raise ModelError(
                "'capacity_sweep' does not apply to trace entries (a trace's "
                "events already fix the workload at every step)"
            )
        if self.generator is None:
            if self.params or self.sweep or self.count is not None:
                raise ModelError(
                    "'params', 'sweep' and 'count' require a 'generator' entry"
                )
            return
        if self.generator not in GENERATORS:
            raise ModelError(
                f"unknown generator {self.generator!r}; "
                f"expected one of {sorted(GENERATORS)}"
            )
        accepted = set(inspect.signature(GENERATORS[self.generator]).parameters)
        for name in itertools.chain(self.params, self.sweep):
            if name not in accepted:
                raise ModelError(
                    f"generator {self.generator!r} has no parameter {name!r}"
                )
        overlap = set(self.params) & set(self.sweep)
        if overlap:
            raise ModelError(
                f"parameters {sorted(overlap)} appear in both 'params' and 'sweep'"
            )
        if self.count is not None:
            if self.count < 1:
                raise ModelError("'count' must be at least one")
            if "seed" not in accepted:
                raise ModelError(
                    f"'count' requires a seeded generator, but "
                    f"{self.generator!r} takes no 'seed' parameter"
                )
            if "seed" in self.params or "seed" in self.sweep:
                raise ModelError("'count' and an explicit 'seed' are mutually exclusive")
        for values in self.sweep.values():
            if not values:
                raise ModelError("sweep axes must not be empty")

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {}
        if self.generator is not None:
            data["generator"] = self.generator
            if self.params:
                data["params"] = dict(self.params)
            if self.sweep:
                data["sweep"] = {name: list(v) for name, v in self.sweep.items()}
            if self.count is not None:
                data["count"] = self.count
        if self.configuration is not None:
            data["configuration"] = self.configuration
        if self.configuration_path is not None:
            data["configuration_path"] = self.configuration_path
        if self.workload is not None:
            data["workload"] = self.workload
        if self.workload_path is not None:
            data["workload_path"] = self.workload_path
        if self.trace is not None:
            data["trace"] = self.trace
        if self.trace_path is not None:
            data["trace_path"] = self.trace_path
        if self.capacity_sweep is not None:
            data["capacity_sweep"] = list(self.capacity_sweep)
        return data


@dataclass
class CampaignSpec:
    """A declarative batch campaign (see the module docstring for the schema)."""

    name: str = "campaign"
    seed: int = 0
    backend: str = "auto"
    weights: str = "prefer-budgets"
    entries: List[CampaignEntry] = field(default_factory=list)
    base_dir: Optional[Path] = None

    # -- construction -----------------------------------------------------------
    @classmethod
    def from_dict(
        cls, data: Mapping[str, object], base_dir: Optional[Union[str, Path]] = None
    ) -> "CampaignSpec":
        version = int(data.get("format_version", FORMAT_VERSION))
        if version > FORMAT_VERSION:
            raise ModelError(
                f"campaign format version {version} is newer than supported "
                f"version {FORMAT_VERSION}"
            )
        entries_data = data.get("entries")
        if not entries_data:
            raise ModelError("a campaign needs a non-empty 'entries' list")
        return cls(
            name=str(data.get("name", "campaign")),
            seed=int(data.get("seed", 0)),
            backend=str(data.get("backend", "auto")),
            weights=str(data.get("weights", "prefer-budgets")),
            entries=[CampaignEntry.from_dict(entry) for entry in entries_data],
            base_dir=None if base_dir is None else Path(base_dir),
        )

    @classmethod
    def from_json(
        cls, text: str, base_dir: Optional[Union[str, Path]] = None
    ) -> "CampaignSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ModelError(f"campaign is not valid JSON: {error}") from None
        if not isinstance(data, dict):
            raise ModelError("a campaign document must be a JSON object")
        return cls.from_dict(data, base_dir=base_dir)

    def to_dict(self) -> Dict[str, object]:
        return {
            "format_version": FORMAT_VERSION,
            "name": self.name,
            "seed": self.seed,
            "backend": self.backend,
            "weights": self.weights,
            "entries": [entry.to_dict() for entry in self.entries],
        }

    # -- expansion --------------------------------------------------------------
    def _instance_seeds(self, entry_index: int, count: int) -> List[int]:
        """Derive ``count`` deterministic instance seeds from the campaign seed."""
        rng = random.Random(f"{self.seed}:{entry_index}")
        return [rng.randrange(2**31) for _ in range(count)]

    def _resolve_path(self, path_text: str) -> Path:
        path = Path(path_text)
        if not path.is_absolute() and self.base_dir is not None:
            path = self.base_dir / path
        return path

    def _entry_configurations(self, index: int, entry: CampaignEntry):
        """Yield ``(label, Configuration | Workload | AdmissionTrace)`` pairs."""
        if entry.trace is not None or entry.trace_path is not None:
            from repro.core.admission import load_trace, trace_from_dict

            if entry.trace is not None:
                trace = trace_from_dict(entry.trace)
            else:
                trace = load_trace(self._resolve_path(entry.trace_path))
            yield f"{index}:{trace.name}", trace
            return
        if entry.workload is not None or entry.workload_path is not None:
            if entry.workload is not None:
                workload = workload_from_dict(entry.workload)
            else:
                workload = load_workload(self._resolve_path(entry.workload_path))
            yield f"{index}:{workload.name}", workload
            return
        if entry.generator is None:
            if entry.configuration is not None:
                configuration = serialization.configuration_from_dict(entry.configuration)
            else:
                configuration = serialization.load_configuration(
                    self._resolve_path(entry.configuration_path)
                )
            yield f"{index}:{configuration.name}", configuration
            return

        generate = GENERATORS[entry.generator]
        sweep = dict(entry.sweep)
        if entry.count is not None:
            sweep["seed"] = self._instance_seeds(index, entry.count)
        axes = list(sweep.items())
        for combination in itertools.product(*(values for _, values in axes)):
            overrides = {name: value for (name, _), value in zip(axes, combination)}
            try:
                configuration = generate(**{**entry.params, **overrides})
            except TypeError as error:
                raise ModelError(
                    f"generator {entry.generator!r} rejected its parameters: {error}"
                ) from None
            suffix = ",".join(f"{name}={value}" for name, value in overrides.items())
            label = f"{index}:{entry.generator}" + (f"[{suffix}]" if suffix else "")
            yield label, configuration

    def expand(self) -> List[CampaignItem]:
        """Expand the campaign into its deterministic, ordered list of items."""
        from repro.core.admission import AdmissionTrace

        items: List[CampaignItem] = []
        for index, entry in enumerate(self.entries):
            for label, subject in self._entry_configurations(index, entry):
                if isinstance(subject, AdmissionTrace):
                    items.append(CampaignItem(label=label, trace=subject))
                    continue
                if isinstance(subject, Workload):
                    items.extend(self._workload_items(label, subject, entry))
                    continue
                if entry.capacity_sweep is None:
                    items.append(CampaignItem(label=label, configuration=subject))
                    continue
                buffer_names = [buffer.name for _, buffer in subject.all_buffers()]
                for limit in entry.capacity_sweep:
                    items.append(
                        CampaignItem(
                            label=f"{label}@cap{limit}",
                            configuration=subject,
                            capacity_limits={name: int(limit) for name in buffer_names},
                        )
                    )
        counts = Counter(item.label for item in items)
        duplicates = [label for label, count in counts.items() if count > 1]
        if duplicates:
            raise ModelError(f"campaign expands to duplicate labels: {sorted(duplicates)}")
        return items

    @staticmethod
    def _workload_items(label: str, workload: Workload, entry: CampaignEntry):
        """Expand one workload subject, applying ``capacity_sweep`` to every
        buffer of every application."""
        if entry.capacity_sweep is None:
            yield CampaignItem(label=label, workload=workload)
            return
        for limit in entry.capacity_sweep:
            yield CampaignItem(
                label=f"{label}@cap{limit}",
                workload=workload,
                workload_capacity_limits={
                    application.name: {
                        name: int(limit) for name in application.buffer_names()
                    }
                    for application in workload.applications
                },
            )


def load_campaign(path: Union[str, Path]) -> CampaignSpec:
    """Load a campaign specification from a JSON file.

    Relative ``configuration_path`` entries are resolved against the
    campaign file's directory.
    """
    path = Path(path)
    return CampaignSpec.from_json(
        path.read_text(encoding="utf-8"), base_dir=path.parent
    )
