"""Tests of the greedy binding extension (the paper's named future work)."""

from __future__ import annotations

import pytest

from repro.exceptions import BindingError
from repro.binding import bind_and_allocate, bind_greedy
from repro.core import ObjectiveWeights, verify_mapping
from repro.taskgraph import (
    Buffer,
    Configuration,
    ConfigurationBuilder,
    Memory,
    Platform,
    Processor,
    Task,
    TaskGraph,
    heterogeneous_platform,
)
from repro.taskgraph.generators import multi_job_configuration, producer_consumer_configuration


def _unbalanced_configuration() -> Configuration:
    """Four tasks all initially bound to p1; p2 is idle."""
    builder = (
        ConfigurationBuilder(name="unbalanced", granularity=1.0)
        .processor("p1", replenishment_interval=40.0)
        .processor("p2", replenishment_interval=40.0)
        .memory("m1", capacity=40.0)
        .memory("m2", capacity=40.0)
        .task_graph("job", period=10.0)
    )
    for i in range(4):
        builder.task(f"t{i}", wcet=1.0, processor="p1")
    for i in range(3):
        builder.buffer(f"b{i}", source=f"t{i}", target=f"t{i + 1}", memory="m1")
    return builder.build()


class TestBindGreedy:
    def test_balances_processor_load(self):
        result = bind_greedy(_unbalanced_configuration())
        processors_used = set(result.task_bindings.values())
        assert processors_used == {"p1", "p2"}
        # Two tasks per processor: the loads are equal.
        assert result.load_imbalance == pytest.approx(0.0, abs=1e-9)
        assert result.max_processor_load <= 1.0

    def test_spreads_buffers_over_memories(self):
        result = bind_greedy(_unbalanced_configuration())
        memories_used = set(result.buffer_bindings.values())
        assert memories_used == {"m1", "m2"}

    def test_bound_configuration_is_valid_and_allocatable(self):
        result, mapped = bind_and_allocate(
            _unbalanced_configuration(), weights=ObjectiveWeights.prefer_budgets()
        )
        assert result.configuration.name.endswith("-bound")
        report = verify_mapping(mapped)
        assert report.is_valid, report.summary()

    def test_original_configuration_is_untouched(self):
        config = _unbalanced_configuration()
        bind_greedy(config)
        assert all(task.processor == "p1" for _, task in config.all_tasks())

    def test_preserves_task_and_buffer_parameters(self):
        config = producer_consumer_configuration(max_capacity=5)
        result = bind_greedy(config)
        graph = result.configuration.task_graph("T1")
        assert graph.task("wa").wcet == 1.0
        assert graph.buffer("bab").max_capacity == 5

    def test_multi_job_binding_keeps_everything_feasible(self):
        config = multi_job_configuration(job_count=3, stages_per_job=2, max_capacity=8)
        result = bind_greedy(config)
        result.configuration.validate()
        assert result.max_processor_load <= 1.0

    def test_detects_hopeless_processor_demand(self):
        platform = Platform(
            processors=[Processor("p1", replenishment_interval=40.0)],
            memories=[Memory("m1")],
        )
        graph = TaskGraph("job", period=10.0)
        # Each task needs at least 40·3/10 + 1 = 13 Mcycles; four of them
        # cannot fit on the single 40-Mcycle processor.
        for i in range(4):
            graph.add_task(Task(f"t{i}", wcet=3.0, processor="p1"))
        config = Configuration(platform=platform, task_graphs=[graph])
        with pytest.raises(BindingError):
            bind_greedy(config)

    def test_detects_hopeless_memory_demand(self):
        platform = Platform(
            processors=[Processor("p1", 40.0), Processor("p2", 40.0)],
            memories=[Memory("m1", capacity=1.5)],
        )
        graph = TaskGraph("job", period=10.0)
        graph.add_task(Task("a", wcet=1.0, processor="p1"))
        graph.add_task(Task("b", wcet=1.0, processor="p2"))
        graph.add_buffer(Buffer("ab", source="a", target="b", memory="m1"))
        config = Configuration(platform=platform, task_graphs=[graph])
        with pytest.raises(BindingError):
            bind_greedy(config)

    def test_requires_processors_and_memories(self):
        platform = Platform(processors=[], memories=[Memory("m1")])
        graph = TaskGraph("job", period=10.0)
        config = Configuration(platform=platform, task_graphs=[graph])
        with pytest.raises(BindingError):
            bind_greedy(config)


def _speed_mismatch_configuration(big_speed: float) -> Configuration:
    """Three tasks, one fast "big" and one slow "little" processor.

    At ``big_speed == 1.0`` the platform degenerates to two identical
    processors; at ``big_speed == 2.0`` the heavy task's effective demand
    halves on ``big1`` and the greedy pass packs the work differently.
    """
    platform = heterogeneous_platform(
        {"big": {"count": 1, "speed": big_speed}, "little": {"count": 1}},
        replenishment_interval=40.0,
    )
    graph = TaskGraph("job", period=10.0)
    graph.add_task(Task("heavy", wcet=4.0, processor="big1"))
    graph.add_task(Task("medium", wcet=3.0, processor="big1"))
    graph.add_task(Task("light", wcet=1.0, processor="big1"))
    config = Configuration(platform=platform, task_graphs=[graph])
    return config


class TestHeterogeneousBinding:
    def test_speed_changes_the_greedy_assignment(self):
        uniform = bind_greedy(_speed_mismatch_configuration(big_speed=1.0))
        scaled = bind_greedy(_speed_mismatch_configuration(big_speed=2.0))
        # Identical speeds: the heavy task fills big1 and the rest shares
        # little1.  A speed-2 big1 advertises half the demand, so the greedy
        # pass packs the light task next to the heavy one instead.
        assert uniform.task_bindings == {
            "heavy": "big1",
            "medium": "little1",
            "light": "little1",
        }
        assert scaled.task_bindings == {
            "heavy": "big1",
            "medium": "little1",
            "light": "big1",
        }
        assert uniform.task_bindings != scaled.task_bindings

    def test_scaled_demand_uses_effective_cycles(self):
        scaled = bind_greedy(_speed_mismatch_configuration(big_speed=2.0))
        # heavy: 40·(4/2)/10 + 1 = 9; light: 40·(1/2)/10 + 1 = 3 on big1.
        assert scaled.processor_load["big1"] == pytest.approx(12.0 / 40.0)
        # medium: 40·3/10 + 1 = 13 on the unit-speed little1.
        assert scaled.processor_load["little1"] == pytest.approx(13.0 / 40.0)

    def test_cycle_table_restricts_candidate_processors(self):
        platform = heterogeneous_platform(
            {"dsp": {"count": 1}, "risc": {"count": 1}},
            replenishment_interval=40.0,
        )
        graph = TaskGraph("job", period=10.0)
        # Only a DSP implementation exists, so the task must land on dsp1
        # even though risc1 is just as idle.
        graph.add_task(
            Task("filter", wcet=2.0, processor="risc1", cycles_by_type={"dsp": 2.0})
        )
        graph.add_task(Task("control", wcet=2.0, processor="risc1"))
        config = Configuration(platform=platform, task_graphs=[graph])
        result = bind_greedy(config)
        assert result.task_bindings["filter"] == "dsp1"

    def test_no_matching_type_is_a_binding_error(self):
        platform = heterogeneous_platform(
            {"risc": {"count": 2}}, replenishment_interval=40.0
        )
        graph = TaskGraph("job", period=10.0)
        graph.add_task(
            Task("filter", wcet=2.0, processor="risc1", cycles_by_type={"dsp": 2.0})
        )
        config = Configuration(platform=platform, task_graphs=[graph])
        with pytest.raises(BindingError, match="no processor"):
            bind_greedy(config)
