"""Application model: task graphs, FIFO buffers, platforms and configurations.

This package implements Section II-A of the paper: the configuration tuple
``C = (Q, P, M, µ, ̺, o, ς, g)`` and the task graphs
``T = (W, B, π, χ, ν, ζ, ι)`` it contains, plus builders, validation,
serialisation and synthetic workload generators.
"""

from repro.taskgraph.buffer import Buffer
from repro.taskgraph.builder import ConfigurationBuilder
from repro.taskgraph.configuration import Configuration, MappedConfiguration
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.platform import (
    Memory,
    Platform,
    Processor,
    heterogeneous_platform,
    homogeneous_platform,
)
from repro.taskgraph.task import Task
from repro.taskgraph.workload import (
    Application,
    MappedWorkload,
    Workload,
    load_workload,
    random_workload,
    save_workload,
    workload_from_configurations,
    workload_from_dict,
    workload_from_json,
    workload_to_dict,
    workload_to_json,
)
from repro.taskgraph import generators, serialization, validate, workload

__all__ = [
    "Application",
    "Buffer",
    "Configuration",
    "ConfigurationBuilder",
    "MappedConfiguration",
    "MappedWorkload",
    "Memory",
    "Platform",
    "Processor",
    "Task",
    "TaskGraph",
    "Workload",
    "generators",
    "heterogeneous_platform",
    "homogeneous_platform",
    "load_workload",
    "random_workload",
    "save_workload",
    "serialization",
    "validate",
    "workload",
    "workload_from_configurations",
    "workload_from_dict",
    "workload_from_json",
    "workload_to_dict",
    "workload_to_json",
]
