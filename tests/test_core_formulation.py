"""Tests of the Algorithm-1 cone program builder (SocpFormulation)."""

from __future__ import annotations

import pytest

from repro.core.formulation import SocpFormulation
from repro.core.objective import ObjectiveWeights
from repro.solver import SolverStatus
from repro.taskgraph import ConfigurationBuilder
from repro.taskgraph.generators import (
    producer_consumer_configuration,
    ring_configuration,
)


class TestVariableCreation:
    def test_variable_counts(self, paper_producer_consumer):
        formulation = SocpFormulation(paper_producer_consumer)
        program = formulation.build()
        # 2 budgets + 2 lambdas + 1 capacity + 3 free start times (one of the
        # four actors is pinned to zero).
        assert len(program.variables) == 8
        assert set(formulation.variables.budgets) == {"wa", "wb"}
        assert set(formulation.variables.capacities) == {"bab"}
        assert len(formulation.variables.start_times) == 4

    def test_budget_bounds_reflect_throughput_and_capacity(self, paper_producer_consumer):
        formulation = SocpFormulation(paper_producer_consumer)
        formulation.build()
        beta = formulation.variables.budgets["wa"]
        # Lower bound ̺·χ/µ = 40/10 = 4; upper bound ̺ − o − g = 39.
        assert beta.lower == pytest.approx(4.0)
        assert beta.upper == pytest.approx(39.0)

    def test_lambda_bounds(self, paper_producer_consumer):
        formulation = SocpFormulation(paper_producer_consumer)
        formulation.build()
        lam = formulation.variables.reciprocals["wa"]
        assert lam.upper == pytest.approx(10.0 / 40.0)
        assert lam.lower > 0.0

    def test_capacity_bounds_default_to_sound_upper_bound(self, paper_producer_consumer):
        formulation = SocpFormulation(paper_producer_consumer)
        formulation.build()
        capacity = formulation.variables.capacities["bab"]
        assert capacity.lower == pytest.approx(1.0)
        # Σ(̺ + µ)/µ + 1 = (50 + 50)/10 + 1 = 11 containers are always enough.
        assert capacity.upper == pytest.approx(11.0)

    def test_capacity_limits_are_applied(self, paper_producer_consumer):
        formulation = SocpFormulation(paper_producer_consumer, capacity_limits={"bab": 3})
        formulation.build()
        assert formulation.variables.capacities["bab"].upper == pytest.approx(3.0)

    def test_budget_limits_are_applied(self, paper_producer_consumer):
        formulation = SocpFormulation(paper_producer_consumer, budget_limits={"wa": 20.0})
        formulation.build()
        assert formulation.variables.budgets["wa"].upper == pytest.approx(20.0)

    def test_contradictory_budget_limit_is_infeasible(self, paper_producer_consumer):
        from repro.exceptions import InfeasibleProblemError

        formulation = SocpFormulation(paper_producer_consumer, budget_limits={"wa": 1.0})
        with pytest.raises(InfeasibleProblemError):
            formulation.build()

    def test_contradictory_capacity_limit_is_infeasible(self):
        from repro.exceptions import InfeasibleProblemError

        config = ring_configuration(stages=3, initial_tokens=2)
        formulation = SocpFormulation(config, capacity_limits={"b2": 1})
        with pytest.raises(InfeasibleProblemError):
            formulation.build()

    def test_initial_tokens_raise_capacity_lower_bound(self):
        config = ring_configuration(stages=3, initial_tokens=2)
        formulation = SocpFormulation(config)
        formulation.build()
        assert formulation.variables.capacities["b2"].lower == pytest.approx(2.0)


class TestConstraintCounts:
    def test_constraint_families(self, paper_chain3):
        formulation = SocpFormulation(paper_chain3)
        program = formulation.build()
        # One hyperbolic constraint per task (Constraint (8)).
        assert len(program.hyperbolic_constraints) == 3
        linear_names = [c.name for c in program.linear_constraints]
        # Constraint (6): one per task; Constraint (7): self-loops + data +
        # space queues = 3 + 2 + 2 = 7; Constraint (9): one per used processor.
        assert sum(name.startswith("e1[") for name in linear_names) == 3
        assert sum(name.startswith("e2[") for name in linear_names) == 7
        assert sum(name.startswith("processor[") for name in linear_names) == 3

    def test_memory_constraint_only_for_bounded_memories(self):
        unbounded = producer_consumer_configuration()
        bounded = producer_consumer_configuration(memory_capacity=16.0)
        names_unbounded = [
            c.name for c in SocpFormulation(unbounded).build().linear_constraints
        ]
        names_bounded = [
            c.name for c in SocpFormulation(bounded).build().linear_constraints
        ]
        assert not any(n.startswith("memory[") for n in names_unbounded)
        assert any(n.startswith("memory[") for n in names_bounded)

    def test_build_is_idempotent(self, paper_producer_consumer):
        formulation = SocpFormulation(paper_producer_consumer)
        first = formulation.build()
        second = formulation.build()
        assert first is second
        assert len(first.hyperbolic_constraints) == 2


class TestSolutionExtraction:
    def test_relaxed_solution_satisfies_paper_constraints(self, paper_producer_consumer):
        formulation = SocpFormulation(
            paper_producer_consumer, weights=ObjectiveWeights.prefer_budgets()
        )
        solution = formulation.solve()
        assert solution.status is SolverStatus.OPTIMAL
        budgets = formulation.extract_budgets(solution)
        capacities = formulation.extract_capacities(solution)
        start_times = formulation.extract_start_times(solution)
        assert set(budgets) == {"wa", "wb"}
        assert set(capacities) == {"bab"}
        assert len(start_times) == 4
        # Constraint (8) holds at the optimum.
        lam = solution.value(formulation.variables.reciprocals["wa"])
        assert lam * budgets["wa"] >= 1.0 - 1e-6
        # With budget-preferring weights the buffer grows to its bound and the
        # budget falls to its throughput-implied minimum of 4 Mcycles.
        assert budgets["wa"] == pytest.approx(4.0, rel=1e-3)

    def test_weight_override_changes_solution(self, paper_producer_consumer):
        budget_first = SocpFormulation(
            paper_producer_consumer, weights=ObjectiveWeights.prefer_budgets()
        ).solve()
        buffer_first = SocpFormulation(
            paper_producer_consumer, weights=ObjectiveWeights.prefer_buffers()
        ).solve()
        assert budget_first.is_optimal and buffer_first.is_optimal
        formulation = SocpFormulation(paper_producer_consumer)
        formulation.build()
        # Different weightings land at different ends of the trade-off curve.
        cap_budget_first = budget_first.by_name()["capacity[bab]"]
        cap_buffer_first = buffer_first.by_name()["capacity[bab]"]
        assert cap_budget_first > cap_buffer_first + 1.0

    def test_initial_point_strictly_satisfies_hyperbolic(self, paper_chain3):
        formulation = SocpFormulation(paper_chain3)
        formulation.build()
        point = formulation.initial_point()
        for task_name, beta in formulation.variables.budgets.items():
            lam = formulation.variables.reciprocals[task_name]
            assert point[lam] * point[beta] > 1.0

    def test_multi_graph_configuration(self):
        config = (
            ConfigurationBuilder(name="two-jobs", granularity=1.0)
            .processor("p1", replenishment_interval=40.0)
            .processor("p2", replenishment_interval=40.0)
            .memory("m1")
            .task_graph("fast", period=10.0)
            .task("fa", wcet=1.0, processor="p1")
            .task("fb", wcet=1.0, processor="p2")
            .buffer("fab", source="fa", target="fb", memory="m1")
            .task_graph("slow", period=25.0)
            .task("sa", wcet=1.0, processor="p1")
            .task("sb", wcet=1.0, processor="p2")
            .buffer("sab", source="sa", target="sb", memory="m1")
            .build()
        )
        formulation = SocpFormulation(config, weights=ObjectiveWeights.prefer_budgets())
        solution = formulation.solve()
        assert solution.is_optimal
        budgets = formulation.extract_budgets(solution)
        # The slower job needs less budget than the faster one.
        assert budgets["sa"] < budgets["fa"] + 1e-6
