"""The SOCP formulation of Algorithm 1.

Given a configuration, :class:`SocpFormulation` builds the second-order cone
program of the paper:

* **Variables** — per task ``w``: the relaxed budget ``β'(w)`` and the
  reciprocal-budget variable ``λ(w)``; per buffer ``b``: the relaxed capacity
  ``γ'(b)`` (the paper's ``δ'`` of the space queue is ``γ'(b) − ι(b)``); per
  SRDF actor ``v``: a start time ``s(v)`` (one reference actor per weakly
  connected component is pinned to 0 to remove the translation symmetry).
* **Constraint (6)** for every queue in E1 (the task-internal queues):
  ``s(v_i2) ≥ s(v_i1) + ̺(π(w_i)) − β'(w_i)``.
* **Constraint (7)** for every queue in E2 (self-loops, data and space
  queues): ``s(v_j) ≥ s(v_i) + ̺(π(w_i))·χ(w_i)·λ(w_i) − δ(e_ij)·µ``.
* **Constraint (8)**: ``λ(w_i)·β'(w_i) ≥ 1`` — the only non-affine (rotated
  second-order cone) constraint.
* **Constraint (9)** per processor: budgets, one granule of rounding slack per
  task, and the scheduling overhead fit in the replenishment interval.
* **Constraint (10)** per bounded memory: the relaxed capacities plus one
  container of rounding slack per buffer fit in the memory.
* **Objective (5)**: minimise the weighted sum of budgets and capacities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import networkx as nx

from repro.exceptions import FormulationError, InfeasibleProblemError
from repro.core.objective import ObjectiveWeights
from repro.dataflow.construction import (
    QueueKind,
    SrdfSpecification,
    build_srdf_specification,
)
from repro.solver.expression import AffineExpression, Variable, linear_sum
from repro.solver.parametric import ParametricProblem
from repro.solver.problem import ConeProgram, bounds_collapse
from repro.solver.result import Solution
from repro.taskgraph.configuration import Configuration


@dataclass
class FormulationVariables:
    """Handles to the decision variables of the SOCP, keyed by model names."""

    budgets: Dict[str, Variable] = field(default_factory=dict)
    reciprocals: Dict[str, Variable] = field(default_factory=dict)
    capacities: Dict[str, Variable] = field(default_factory=dict)
    start_times: Dict[str, AffineExpression] = field(default_factory=dict)


class SocpFormulation:
    """Builder of the joint budget / buffer-size cone program (Algorithm 1)."""

    def __init__(
        self,
        configuration: Configuration,
        weights: Optional[ObjectiveWeights] = None,
        capacity_limits: Optional[Mapping[str, int]] = None,
        budget_limits: Optional[Mapping[str, float]] = None,
        name: Optional[str] = None,
    ) -> None:
        """Create the formulation.

        Parameters
        ----------
        configuration:
            The validated input configuration.
        weights:
            Objective weighting; defaults to the weights stored on the tasks
            and buffers themselves.
        capacity_limits:
            Optional per-buffer upper bounds on the capacity (containers),
            *in addition to* the bounds stored on the buffers.  Used by the
            trade-off sweeps of the paper's experiments.
        budget_limits:
            Optional per-task upper bounds on the budget, in addition to the
            bounds stored on the tasks.
        """
        self.configuration = configuration
        self.weights = weights or ObjectiveWeights()
        self.capacity_limits = dict(capacity_limits or {})
        self.budget_limits = dict(budget_limits or {})
        self.name = name or f"socp[{configuration.name}]"
        self.specifications: Dict[str, SrdfSpecification] = {
            graph.name: build_srdf_specification(graph)
            for graph in configuration.task_graphs
        }
        self.program = ConeProgram(name=self.name)
        self.variables = FormulationVariables()
        self._built = False

    # -- public API ------------------------------------------------------------
    def build(self) -> ConeProgram:
        """Construct the cone program; idempotent."""
        if self._built:
            return self.program
        self._add_task_variables()
        self._add_capacity_variables()
        self._add_start_time_variables()
        self._add_precedence_constraints()
        self._add_reciprocal_constraints()
        self._add_processor_constraints()
        self._add_memory_constraints()
        self._set_objective()
        self._built = True
        return self.program

    def initial_point(self) -> Dict[Variable, float]:
        """A heuristic warm-start point.

        The point strictly satisfies every hyperbolic constraint (``λ·β > 1``)
        and the simple bound constraints; phase I of the barrier solver
        repairs any remaining linear infeasibility.
        """
        if not self._built:
            self.build()
        values: Dict[Variable, float] = {}
        configuration = self.configuration
        for graph in configuration.task_graphs:
            for task in graph.tasks:
                processor = configuration.platform.processor(task.processor)
                beta_var = self.variables.budgets[task.name]
                lower = beta_var.lower if beta_var.lower is not None else 1e-3
                upper = beta_var.upper if beta_var.upper is not None else processor.replenishment_interval
                beta0 = min(max(0.5 * (lower + upper), lower * 1.01), upper * 0.999)
                values[beta_var] = beta0
                values[self.variables.reciprocals[task.name]] = 1.05 / beta0
            for buffer in graph.buffers:
                cap_var = self.variables.capacities[buffer.name]
                lower = cap_var.lower if cap_var.lower is not None else 1.0
                upper = cap_var.upper if cap_var.upper is not None else lower + 8.0
                values[cap_var] = 0.5 * (lower + upper)
        return values

    def solve(self, backend: str = "auto", **options: object) -> Solution:
        """Build (if necessary) and solve the cone program."""
        program = self.build()
        return program.solve(
            backend=backend, initial_point=self.initial_point(), **options
        )

    # -- solution extraction ------------------------------------------------------
    def extract_budgets(self, solution: Solution) -> Dict[str, float]:
        """Relaxed budgets ``β'(w)`` at a solution."""
        return {name: solution.value(var) for name, var in self.variables.budgets.items()}

    def extract_capacities(self, solution: Solution) -> Dict[str, float]:
        """Relaxed capacities ``γ'(b)`` at a solution."""
        return {
            name: solution.value(var) for name, var in self.variables.capacities.items()
        }

    def extract_start_times(self, solution: Solution) -> Dict[str, float]:
        """Start times ``s(v)`` of all SRDF actors at a solution."""
        return {
            name: solution.value(expr)
            for name, expr in self.variables.start_times.items()
        }

    # -- effective bounds ---------------------------------------------------------
    def _budget_bounds(
        self, graph, task, budget_limits: Mapping[str, float]
    ) -> Tuple[float, float]:
        """The effective ``β'(w)`` bounds under ``budget_limits``.

        The single definition of the budget-bound arithmetic: variable
        creation uses it at build time, and the parametric layer
        (:class:`ParametricSocpFormulation`) re-evaluates it per sweep point —
        both paths therefore raise the same :class:`InfeasibleProblemError`
        for contradictory bounds.

        ``β'(w) ≥ ̺·χ/µ`` is implied by Constraints (7)+(8) on the self-loop;
        stating it as a bound tightens the relaxation the solver works with
        without changing the optimum.
        """
        configuration = self.configuration
        processor = configuration.platform.processor(task.processor)
        rho = processor.replenishment_interval
        lower = rho * task.wcet / graph.period
        if task.min_budget is not None:
            lower = max(lower, task.min_budget)
        upper = processor.allocatable_capacity - configuration.granularity
        if task.max_budget is not None:
            upper = min(upper, task.max_budget)
        if task.name in budget_limits:
            upper = min(upper, float(budget_limits[task.name]))
        if upper < lower - 1e-12:
            raise InfeasibleProblemError(
                f"task {task.name!r}: the budget upper bound {upper:.6g} is "
                f"below the lower bound {lower:.6g} implied by the throughput "
                f"requirement"
            )
        return lower, upper

    def _capacity_bounds(
        self, buffer, default_bound: float, capacity_limits: Mapping[str, int]
    ) -> Tuple[float, float]:
        """The effective ``γ'(b)`` bounds under ``capacity_limits``.

        Like :meth:`_budget_bounds`, shared between build-time variable
        creation and the parametric per-point re-evaluation.
        """
        lower = float(buffer.smallest_feasible_capacity)
        upper = default_bound + buffer.initial_tokens
        if buffer.max_capacity is not None:
            upper = min(upper, float(buffer.max_capacity))
        if buffer.name in capacity_limits:
            upper = min(upper, float(capacity_limits[buffer.name]))
        if upper < lower - 1e-12:
            raise InfeasibleProblemError(
                f"buffer {buffer.name!r}: the capacity upper bound {upper:.6g} "
                f"is below the smallest feasible capacity {lower:.6g}"
            )
        return lower, upper

    # -- variable creation -------------------------------------------------------
    def _add_task_variables(self) -> None:
        configuration = self.configuration
        for graph in configuration.task_graphs:
            for task in graph.tasks:
                processor = configuration.platform.processor(task.processor)
                rho = processor.replenishment_interval
                lower, upper = self._budget_bounds(graph, task, self.budget_limits)
                beta = self.program.add_variable(f"beta[{task.name}]", lower=lower, upper=upper)
                lam = self.program.add_variable(
                    f"lambda[{task.name}]",
                    lower=1.0 / max(upper, 1e-12),
                    upper=graph.period / (rho * task.wcet),
                )
                self.variables.budgets[task.name] = beta
                self.variables.reciprocals[task.name] = lam

    def _sufficient_capacity_bound(self, graph) -> float:
        """A buffer capacity that is always enough for this task graph.

        Any simple cycle of the constructed SRDF graph visits each task's
        actor pair at most once, and each pair contributes at most
        ``̺(p) + ̺(p)·χ(w)/β_min(w) = ̺(p) + µ`` to the cycle's duration
        (using the throughput-implied budget lower bound).  A space queue
        carrying ``⌈Σ(̺(p) + µ)/µ⌉`` tokens therefore satisfies Constraint (1)
        on every cycle through it regardless of the other variables, so
        capping capacities at this value (plus the initial tokens) never cuts
        off the optimum while keeping the feasible region bounded.
        """
        total = 0.0
        for task in graph.tasks:
            processor = self.configuration.platform.processor(task.processor)
            total += processor.replenishment_interval + graph.period
        return math.ceil(total / graph.period) + 1.0

    def _add_capacity_variables(self) -> None:
        for graph in self.configuration.task_graphs:
            default_bound = self._sufficient_capacity_bound(graph)
            for buffer in graph.buffers:
                lower, upper = self._capacity_bounds(
                    buffer, default_bound, self.capacity_limits
                )
                capacity = self.program.add_variable(
                    f"capacity[{buffer.name}]", lower=lower, upper=upper
                )
                self.variables.capacities[buffer.name] = capacity

    def _add_start_time_variables(self) -> None:
        """One start-time variable per actor, pinning one per weak component.

        Start times only appear in difference constraints, so each weakly
        connected component of the SRDF graph has a translation symmetry;
        pinning one actor per component to 0 removes it (the objective does
        not involve start times, so no optimality is lost).
        """
        for spec in self.specifications.values():
            component_graph = nx.Graph()
            component_graph.add_nodes_from(spec.actor_names())
            for queue in spec.queues:
                component_graph.add_edge(queue.source, queue.target)
            for component in nx.connected_components(component_graph):
                reference = sorted(component)[0]
                self.variables.start_times[reference] = AffineExpression({}, 0.0)
                for actor_name in sorted(component):
                    if actor_name == reference:
                        continue
                    var = self.program.add_variable(f"s[{actor_name}]")
                    self.variables.start_times[actor_name] = AffineExpression({var: 1.0})

    # -- constraints -----------------------------------------------------------------
    def _queue_token_expression(self, graph_name: str, queue) -> AffineExpression:
        """The token count ``δ(e)`` of a queue as an affine expression."""
        if queue.fixed_tokens is not None:
            return AffineExpression({}, float(queue.fixed_tokens))
        graph = self.configuration.task_graph(graph_name)
        buffer = graph.buffer(queue.buffer)
        capacity = self.variables.capacities[buffer.name]
        return AffineExpression({capacity: 1.0}, -float(buffer.initial_tokens))

    def _add_precedence_constraints(self) -> None:
        configuration = self.configuration
        for graph_name, spec in self.specifications.items():
            graph = configuration.task_graph(graph_name)
            period = graph.period
            for queue in spec.queues:
                task = graph.task(queue.source_task)
                processor = configuration.platform.processor(task.processor)
                rho = processor.replenishment_interval
                s_source = self.variables.start_times[queue.source]
                s_target = self.variables.start_times[queue.target]

                if queue.in_queue_set_e1:
                    # Constraint (6): s_j ≥ s_i + ̺ − β'
                    beta = self.variables.budgets[task.name]
                    rhs = s_source + rho - beta
                    self.program.add_greater_equal(
                        s_target, rhs, name=f"e1[{queue.name}]"
                    )
                else:
                    # Constraint (7): s_j ≥ s_i + ̺·χ·λ − δ(e)·µ
                    lam = self.variables.reciprocals[task.name]
                    tokens = self._queue_token_expression(graph_name, queue)
                    rhs = s_source + lam * (rho * task.wcet) - tokens * period
                    self.program.add_greater_equal(
                        s_target, rhs, name=f"e2[{queue.name}]"
                    )

    def _add_reciprocal_constraints(self) -> None:
        for task_name, beta in self.variables.budgets.items():
            lam = self.variables.reciprocals[task_name]
            # Constraint (8): λ·β' ≥ 1
            self.program.add_hyperbolic(lam, beta, 1.0, name=f"recip[{task_name}]")

    def _add_processor_constraints(self) -> None:
        configuration = self.configuration
        g = configuration.granularity
        for processor_name, processor in configuration.platform.processors.items():
            tasks = configuration.tasks_on_processor(processor_name)
            if not tasks:
                continue
            # Constraint (9): ̺ ≥ o + Σ (β' + g)
            total = linear_sum(
                [self.variables.budgets[task.name] for task in tasks]
            ) + g * len(tasks) + processor.scheduling_overhead
            self.program.add_less_equal(
                total,
                processor.replenishment_interval,
                name=f"processor[{processor_name}]",
            )

    def _add_memory_constraints(self) -> None:
        configuration = self.configuration
        for memory_name, memory in configuration.platform.memories.items():
            if not memory.is_bounded:
                continue
            buffers = configuration.buffers_in_memory(memory_name)
            if not buffers:
                continue
            # Constraint (10): ς ≥ Σ (γ' + 1)·ζ, the +1 pre-charging the
            # conservative rounding of the capacity.
            usage = linear_sum(
                [
                    (self.variables.capacities[buffer.name] + 1.0) * buffer.container_size
                    for buffer in buffers
                ]
            )
            self.program.add_less_equal(
                usage, memory.capacity, name=f"memory[{memory_name}]"
            )

    def _set_objective(self) -> None:
        configuration = self.configuration
        terms = []
        for graph in configuration.task_graphs:
            for task in graph.tasks:
                coefficient = self.weights.budget_coefficient(task)
                if coefficient:
                    terms.append(self.variables.budgets[task.name] * coefficient)
            for buffer in graph.buffers:
                coefficient = self.weights.capacity_coefficient(buffer)
                if coefficient:
                    terms.append(self.variables.capacities[buffer.name] * coefficient)
        self.program.minimize(linear_sum(terms))


class ParametricSocpFormulation:
    """The SOCP of Algorithm 1 compiled once, with limits as parameters.

    Where :class:`SocpFormulation` bakes the sweep's ``capacity_limits`` and
    ``budget_limits`` into freshly built variable bounds — forcing a full
    rebuild and recompile per sweep point — this wrapper builds the program
    *without* the limits and registers the affected compiled rows as named
    parameters of a :class:`~repro.solver.parametric.ParametricProblem`:

    * ``capacity_limit[<buffer>]`` — the upper-bound row of ``γ'(b)``;
    * ``budget_limit[<task>]`` — the upper-bound row of ``β'(w)``;
    * ``reciprocal_floor[<task>]`` — the lower-bound row of ``λ(w)``, kept at
      ``1 / β'_max`` so the relaxation stays exactly as tight as the rebuilt
      program's.

    :meth:`apply_limits` recomputes the same effective bounds the rebuild
    path would (``min`` of the stored bounds and the sweep limit) and writes
    them into the compiled problem.  One structural case cannot be expressed
    by mutating right-hand sides: a limit that lands *exactly on* a
    variable's lower bound, which the rebuild path turns into an equality
    row.  ``apply_limits`` reports such pinned variables so the caller can
    fall back to a one-off rebuild for that point.
    """

    def __init__(
        self,
        configuration: Configuration,
        weights: Optional[ObjectiveWeights] = None,
        name: Optional[str] = None,
    ) -> None:
        self.configuration = configuration
        self.formulation = SocpFormulation(configuration, weights=weights, name=name)
        self.formulation.build()
        self.parametric = ParametricProblem(self.formulation.program)
        # Variables whose static bounds already coincide compile to equality
        # rows and expose no parametric slot; remember which registrations
        # succeeded so apply_limits() can skip the rest.
        self._budget_slots: Dict[str, bool] = {}
        self._reciprocal_slots: Dict[str, bool] = {}
        self._capacity_slots: Dict[str, bool] = {}
        # Per-graph capacity default bounds depend only on the (immutable)
        # configuration; compute them once instead of per sweep point.
        self._capacity_default_bounds: Dict[str, float] = {
            graph.name: self.formulation._sufficient_capacity_bound(graph)
            for graph in configuration.task_graphs
        }
        variables = self.formulation.variables
        for task_name, beta in variables.budgets.items():
            self._budget_slots[task_name] = self._register(
                f"budget_limit[{task_name}]", beta, upper=True
            )
            self._reciprocal_slots[task_name] = self._register(
                f"reciprocal_floor[{task_name}]",
                variables.reciprocals[task_name],
                upper=False,
            )
        for buffer_name, capacity in variables.capacities.items():
            self._capacity_slots[buffer_name] = self._register(
                f"capacity_limit[{buffer_name}]", capacity, upper=True
            )

    def _register(self, slot: str, variable: Variable, upper: bool) -> bool:
        try:
            if upper:
                self.parametric.register_upper_bound(slot, variable)
            else:
                self.parametric.register_lower_bound(slot, variable)
        except FormulationError:
            return False
        return True

    def initial_point(self) -> Dict[Variable, float]:
        """The heuristic start point of the underlying formulation."""
        return self.formulation.initial_point()

    def apply_limits(
        self,
        capacity_limits: Optional[Mapping[str, int]] = None,
        budget_limits: Optional[Mapping[str, float]] = None,
    ) -> List[str]:
        """Write the effective bounds for one sweep point into the program.

        Re-evaluates the rebuild path's own bound arithmetic
        (:meth:`SocpFormulation._budget_bounds` /
        :meth:`SocpFormulation._capacity_bounds`) under the given limits —
        including raising :class:`InfeasibleProblemError` when a limit falls
        below a variable's lower bound, in the same variable order.  Returns
        the names of variables the limits pin onto their lower bound (the
        structural case that needs a rebuild, per
        :func:`repro.solver.problem.bounds_collapse`); an empty list means
        the compiled problem now describes exactly the limited program.
        """
        capacity_limits = dict(capacity_limits or {})
        budget_limits = dict(budget_limits or {})
        formulation = self.formulation
        pinned: List[str] = []

        for graph in self.configuration.task_graphs:
            for task in graph.tasks:
                lower, upper = formulation._budget_bounds(graph, task, budget_limits)
                if not self._budget_slots[task.name]:
                    continue
                if bounds_collapse(lower, upper):
                    pinned.append(f"beta[{task.name}]")
                self.parametric.set(f"budget_limit[{task.name}]", upper)
                if self._reciprocal_slots[task.name]:
                    self.parametric.set(
                        f"reciprocal_floor[{task.name}]", 1.0 / max(upper, 1e-12)
                    )

        for graph in self.configuration.task_graphs:
            default_bound = self._capacity_default_bounds[graph.name]
            for buffer in graph.buffers:
                lower, upper = formulation._capacity_bounds(
                    buffer, default_bound, capacity_limits
                )
                if not self._capacity_slots[buffer.name]:
                    continue
                if bounds_collapse(lower, upper):
                    pinned.append(f"capacity[{buffer.name}]")
                self.parametric.set(f"capacity_limit[{buffer.name}]", upper)

        return pinned
