"""Unit tests for the constraint types."""

from __future__ import annotations


import pytest

from repro.exceptions import FormulationError
from repro.solver.constraints import (
    EQUAL,
    GREATER_EQUAL,
    LESS_EQUAL,
    HyperbolicConstraint,
    LinearConstraint,
    SecondOrderConeConstraint,
)
from repro.solver.expression import Variable


class TestLinearConstraint:
    def test_less_equal_normalisation(self):
        x = Variable("x")
        constraint = LinearConstraint(x + 1.0, LESS_EQUAL, 3.0)
        # normalised to (x + 1 - 3) <= 0
        assert constraint.is_satisfied({x: 2.0})
        assert not constraint.is_satisfied({x: 2.5})

    def test_greater_equal_normalisation(self):
        x = Variable("x")
        constraint = LinearConstraint(x, GREATER_EQUAL, 5.0)
        assert constraint.is_satisfied({x: 5.0})
        assert constraint.violation({x: 3.0}) == pytest.approx(2.0)

    def test_equality(self):
        x = Variable("x")
        constraint = LinearConstraint(2.0 * x, EQUAL, 4.0)
        assert constraint.is_equality
        assert constraint.is_satisfied({x: 2.0})
        assert constraint.violation({x: 3.0}) == pytest.approx(2.0)

    def test_unknown_sense_rejected(self):
        x = Variable("x")
        with pytest.raises(FormulationError):
            LinearConstraint(x, "<", 1.0)

    def test_violation_is_zero_when_satisfied(self):
        x = Variable("x")
        constraint = LinearConstraint(x, LESS_EQUAL, 10.0)
        assert constraint.violation({x: -5.0}) == 0.0


class TestHyperbolicConstraint:
    def test_margin_and_satisfaction(self):
        x, y = Variable("x"), Variable("y")
        constraint = HyperbolicConstraint(x, y, 6.0)
        assert constraint.is_satisfied({x: 2.0, y: 3.0})
        assert constraint.margin({x: 2.0, y: 3.0}) == pytest.approx(0.0)
        assert not constraint.is_satisfied({x: 1.0, y: 3.0})

    def test_negative_branch_is_infeasible(self):
        x, y = Variable("x"), Variable("y")
        constraint = HyperbolicConstraint(x, y, 1.0)
        # (-1)·(-2) = 2 >= 1 numerically, but the constraint is restricted to
        # the positive branch of the hyperbola.
        assert not constraint.is_satisfied({x: -1.0, y: -2.0})

    def test_rejects_non_positive_bound(self):
        x, y = Variable("x"), Variable("y")
        with pytest.raises(FormulationError):
            HyperbolicConstraint(x, y, 0.0)
        with pytest.raises(FormulationError):
            HyperbolicConstraint(x, y, -1.0)

    def test_rejects_two_constants(self):
        with pytest.raises(FormulationError):
            HyperbolicConstraint(2.0, 3.0, 1.0)

    def test_second_order_cone_conversion_is_equivalent(self):
        x, y = Variable("x"), Variable("y")
        constraint = HyperbolicConstraint(x, y, 4.0)
        cone = constraint.to_second_order_cone()
        for values in ({x: 2.0, y: 2.0}, {x: 8.0, y: 0.5}, {x: 1.0, y: 1.0}, {x: 5.0, y: 0.5}):
            assert constraint.is_satisfied(values) == cone.is_satisfied(values), values


class TestSecondOrderConeConstraint:
    def test_margin(self):
        x, y = Variable("x"), Variable("y")
        cone = SecondOrderConeConstraint([x, y], 5.0)
        assert cone.margin({x: 3.0, y: 4.0}) == pytest.approx(0.0)
        assert cone.is_satisfied({x: 3.0, y: 3.0})
        assert not cone.is_satisfied({x: 4.0, y: 4.0})

    def test_requires_rows(self):
        with pytest.raises(FormulationError):
            SecondOrderConeConstraint([], 1.0)

    def test_affine_rhs(self):
        x, t = Variable("x"), Variable("t")
        cone = SecondOrderConeConstraint([x], t + 1.0)
        assert cone.is_satisfied({x: 2.0, t: 1.0})
        assert not cone.is_satisfied({x: 2.0, t: 0.5})
