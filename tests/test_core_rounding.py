"""Tests of the conservative rounding rules."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import AllocationError
from repro.core.rounding import (
    round_budget,
    round_budgets,
    round_capacities,
    round_capacity,
    rounding_overhead,
)


class TestRoundBudget:
    def test_rounds_up_to_granule(self):
        assert round_budget(17.2, 1.0) == pytest.approx(18.0)
        assert round_budget(17.2, 2.0) == pytest.approx(18.0)
        assert round_budget(17.2, 5.0) == pytest.approx(20.0)

    def test_exact_multiples_are_kept(self):
        assert round_budget(16.0, 4.0) == pytest.approx(16.0)

    def test_snapping_absorbs_solver_noise(self):
        assert round_budget(16.0000000001, 4.0) == pytest.approx(16.0)

    def test_minimum_one_granule(self):
        assert round_budget(0.001, 2.0) == pytest.approx(2.0)

    def test_invalid_inputs(self):
        with pytest.raises(AllocationError):
            round_budget(-1.0, 1.0)
        with pytest.raises(AllocationError):
            round_budget(1.0, 0.0)


class TestRoundCapacity:
    def test_rounds_up(self):
        assert round_capacity(3.2) == 4
        assert round_capacity(3.0) == 3

    def test_minimum_one_container(self):
        assert round_capacity(0.2) == 1

    def test_snapping(self):
        assert round_capacity(5.0000000001) == 5

    def test_invalid_input(self):
        with pytest.raises(AllocationError):
            round_capacity(0.0)


class TestBatchHelpers:
    def test_round_budgets_and_overhead(self):
        relaxed = {"a": 3.3, "b": 8.0}
        rounded = round_budgets(relaxed, granularity=2.0)
        assert rounded == {"a": 4.0, "b": 8.0}
        overhead = rounding_overhead(relaxed, rounded)
        assert overhead["a"] == pytest.approx(0.7)
        assert overhead["b"] == pytest.approx(0.0)

    def test_round_capacities(self):
        assert round_capacities({"x": 1.1, "y": 2.0}) == {"x": 2, "y": 2}


@given(
    value=st.floats(min_value=1e-3, max_value=1e4, allow_nan=False),
    granularity=st.floats(min_value=1e-2, max_value=100.0, allow_nan=False),
)
def test_budget_rounding_properties(value, granularity):
    """Property: rounding never decreases the budget, adds at most one granule,
    and always lands on a positive multiple of the granularity."""
    rounded = round_budget(value, granularity)
    assert rounded >= value - 1e-6 * max(1.0, value)
    assert rounded <= value + granularity + 1e-6 * max(1.0, value)
    granules = rounded / granularity
    assert abs(granules - round(granules)) < 1e-6
    assert rounded > 0.0


@given(value=st.floats(min_value=1e-3, max_value=1e6, allow_nan=False))
def test_capacity_rounding_properties(value):
    """Property: capacity rounding is the conservative integer ceiling."""
    rounded = round_capacity(value)
    assert isinstance(rounded, int)
    assert rounded >= 1
    assert rounded >= value - 1e-5 * max(1.0, value)
    assert rounded < value + 1.0 + 1e-6
