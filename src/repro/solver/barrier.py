"""Log-barrier interior-point solver for linear + second-order cone programs.

This module is the from-scratch replacement for the commercial cone solver
(CPLEX) used in the paper.  It implements the classic two-phase barrier
method described in Boyd & Vandenberghe, *Convex Optimization*, chapter 11:

* **Phase I** finds a strictly feasible point by minimising a single scalar
  infeasibility ``t`` that relaxes every inequality, with hyperbolic
  constraints handled in their second-order cone form (which is jointly
  convex in the original variables and ``t``).
* **Phase II** minimises ``t_barrier · cᵀx + φ(x)`` by damped Newton steps for
  a geometrically increasing barrier parameter ``t_barrier``, where ``φ`` is
  the sum of the logarithmic barriers of all constraints.

Barrier terms used (all standard self-concordant barriers):

* linear ``G·x ≤ h``:            ``−Σ log(h_i − g_iᵀx)``
* hyperbolic ``p(x)·q(x) ≥ w``:  ``−log(p·q − w)`` on the branch ``p, q > 0``
* SOC ``‖u(x)‖ ≤ v(x)``:         ``−log(v² − ‖u‖²)`` on the branch ``v > 0``

Each family is evaluated as a *vectorised block* (one stacked matrix per
family, SOC cones batched by norm dimension) so that slack checks, barrier
values and the Newton system assembly are BLAS calls rather than Python
loops over individual constraints.

Equality constraints are eliminated up front by restricting the search to an
affine subspace ``x = x_p + N·z`` where ``N`` spans the null space of the
equality matrix.

Structured Newton solves
------------------------

A multi-application workload program carries a
:class:`~repro.solver.problem.BlockStructure`: per-application variable
ranges whose blocks are coupled only through a handful of shared linear
capacity rows.  The barrier Hessian of such a program is *block diagonal
plus low rank* — every per-application barrier term contributes to one
diagonal block, and each coupling row ``g`` adds the rank-one term
``g·gᵀ/s²``.  Equivalently, the KKT system of the Newton step is
arrow-structured, and the solver exploits it:

* equalities are eliminated **blockwise** (one SVD per application instead
  of one on the full matrix), keeping the null-space basis block diagonal so
  the reduced problem inherits the partition;
* each Newton step factorises the per-application diagonal blocks
  independently (Cholesky via :func:`scipy.linalg.cho_factor` when scipy is
  available) and folds the coupling rows in through the Schur complement of
  the arrow system (a matrix of coupling-row dimension, typically the number
  of shared processors and memories);
* phase I, whose relaxation variable ``t`` touches every constraint, is
  solved with the same machinery by treating ``t`` as a one-column *border*
  of the arrow.

The structured path engages automatically for problems with two or more
blocks and narrow coupling, and falls back to the dense solve otherwise (or
when a block factorisation fails); both paths run the identical barrier
schedule, so they return the same optimum to solver tolerance.  The
equality-elimination result is cached on the compiled problem
(:attr:`~repro.solver.problem.CompiledProblem.elimination_cache`), so
warm-started parametric re-solves pay for the factorisations exactly once.

Sparse backend
--------------

The structured path is built to scale to hundreds of applications:

* the compiled constraint matrices arrive in CSR form
  (:attr:`~repro.solver.problem.CompiledProblem.G_sparse`) and every
  per-block reduction slices them without densifying the full matrix;
* blockwise equality elimination uses a pivoted QR factorisation per block
  (no dense SVD), and the null-space basis is kept *per block* — lifting,
  projecting and warm-starting are blockwise, never O(n·k) dense products;
* each centering run owns a :class:`_StructuredWorkspace` with preallocated
  right-hand-side/solution buffers; per-application Hessian blocks of equal
  width are factorised in *batched* LAPACK calls (one batched Cholesky for
  the positive-definiteness check, one batched solve), while blocks wider
  than :attr:`BarrierOptions.sparse_block_width` go through a sparse
  ``splu`` factorisation instead;
* the line-search merit is evaluated through one CSR matrix per constraint
  family spanning all blocks (a few sparse matvecs per trial point instead
  of a Python loop over per-block terms).

Per-iteration cost is therefore linear in the number of applications; the
``benchmarks/test_bench_block_newton.py`` scaling curve pins this.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.metrics import get_registry as _metrics_registry
from repro.obs.trace import span as obs_span
from repro.reliability.faults import maybe_fail as _maybe_fail
from repro.solver.problem import (
    BlockStructure,
    CompiledCone,
    CompiledHyperbolic,
    CompiledProblem,
)
from repro.solver.result import Solution, SolverStatus

try:  # scipy is optional; the solver falls back to LU solves without it.
    from scipy.linalg import cho_factor, cho_solve

    _HAVE_CHOLESKY = True
except ImportError:  # pragma: no cover - exercised only without scipy
    _HAVE_CHOLESKY = False

try:  # sparse substrate of the structured path (CSR merit, splu blocks, QR)
    from scipy import sparse as _sp
    from scipy.linalg import qr as _sp_qr, solve_triangular as _sp_solve_triangular
    from scipy.sparse.linalg import splu as _sp_splu

    _HAVE_SPARSE = True
except ImportError:  # pragma: no cover - exercised only without scipy
    _sp = None
    _HAVE_SPARSE = False


def _spd_solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve a symmetric positive-definite system for a (multi-column) rhs.

    Uses a Cholesky factorisation when scipy is available and plain
    :func:`numpy.linalg.solve` otherwise; raises
    :class:`numpy.linalg.LinAlgError` when the matrix is not positive
    definite, which the structured Newton path catches to fall back to the
    dense solve.
    """
    if matrix.shape[0] == 0:
        return np.zeros_like(rhs)
    if _HAVE_CHOLESKY:
        return cho_solve(
            cho_factor(matrix, lower=True, check_finite=False),
            rhs,
            check_finite=False,
        )
    # np.linalg.solve only raises for *singular* matrices; factorise first so
    # an indefinite block still trips the dense fallback instead of quietly
    # producing a non-descent direction.
    np.linalg.cholesky(matrix)
    return np.linalg.solve(matrix, rhs)


@dataclass
class BarrierOptions:
    """Tuning knobs of the barrier solver.

    The defaults are deliberately conservative; the problem instances from the
    paper's experiments solve in a handful of outer iterations regardless.
    """

    tolerance: float = 1e-7           #: relative duality-gap target m / (t_barrier·max(1, |obj|))
    feasibility_margin: float = 1e-9  #: required strict slack at the phase-I exit
    initial_barrier: float = 1.0      #: initial barrier parameter t_barrier
    barrier_increase: float = 25.0    #: geometric growth factor of t_barrier
    max_outer_iterations: int = 60
    max_newton_iterations: int = 60
    #: Stop a centering run when ``λ²/2 ≤ newton_tolerance · max(1, t_barrier)``.
    #: The scaling matters: the gradient of the merit function grows with the
    #: barrier parameter, so an absolute decrement target that is reachable at
    #: ``t = 1`` lies below the floating-point noise floor at ``t ≈ 10⁷`` —
    #: without the scaling the final rungs burn the whole Newton budget making
    #: no progress.  At the scaled target the Newton decrement ``λ`` is still
    #: ≪ 1, i.e. the point is well inside the quadratic-convergence region and
    #: the ``m/t`` duality-gap bound remains valid.
    newton_tolerance: float = 1e-9
    line_search_alpha: float = 0.05
    line_search_beta: float = 0.6
    regularization: float = 1e-11     #: Tikhonov term added to the Newton system
    unbounded_threshold: float = 1e12 #: |objective| beyond which we declare unboundedness
    #: Phase-II starting barrier parameter used *only* when phase I is skipped
    #: (the initial point was already strictly feasible).  Warm-started
    #: re-solves (:class:`repro.solver.parametric.SolveSession`) set this to a
    #: power of ``barrier_increase`` a few rungs below the previous solve's
    #: final value, so centering restarts near the previous optimum instead of
    #: walking the whole central path again.  The solver clamps it so that the
    #: stopping rung — and therefore the returned point — matches a cold solve.
    warm_initial_barrier: Optional[float] = None
    #: Largest Newton decrement ``λ²`` at which :meth:`BarrierSolver.
    #: _select_warm_rung` accepts a raised starting rung for a warm-started
    #: phase II.  The default keeps the first centering within a few damped
    #: Newton steps; callers whose warm points are systematically further
    #: from the new central path — e.g. incremental workload-session edits,
    #: where membership changes shift the shared capacity slacks — may raise
    #: it (a rung that then fails to center still trips the convergence
    #: guard and falls back to a cold run, so correctness is unaffected).
    warm_rung_decrement: float = 4.0
    #: Single-centering mode: when set, phase II performs exactly one Newton
    #: centering at this fixed barrier parameter and returns the central-path
    #: point — no rung ladder, no duality-gap test, no warm-rung selection.
    #: The decomposed (price-coordination) solver drives its subproblems with
    #: this so that every per-application block is centered at the *same*
    #: barrier rung as the coordinator's synchronized schedule.
    centering_barrier: Optional[float] = None
    #: Structured (block-Cholesky + Schur-complement) Newton solves:
    #: ``None`` engages them automatically when the compiled problem carries a
    #: :class:`~repro.solver.problem.BlockStructure` with at least two blocks
    #: and narrow coupling; ``True`` forces them whenever structure exists;
    #: ``False`` disables them (dense solves, used as the baseline by the
    #: block-Newton benchmarks).
    structured: Optional[bool] = None
    #: Per-application Hessian blocks at least this wide are factorised with
    #: a sparse LU (:func:`scipy.sparse.linalg.splu`) instead of joining a
    #: batched dense Cholesky group.  Workload blocks are narrow (a few dozen
    #: variables), so the default only engages for unusually large
    #: applications; tests lower it to exercise the sparse factorisation.
    sparse_block_width: int = 256


class _BarrierTerm:
    """Interface of one log-barrier term: slack, barrier value, gradient, Hessian.

    A term may be *narrow*: ``support`` lists the coordinates of the solver
    vector it reads (its matrices then have ``len(support)`` columns), and
    ``block`` tags the structure block it belongs to (``None`` for full-width
    / coupling terms).  ``grad_hess`` always returns arrays in the term's
    local coordinates; callers scatter through ``support``.
    """

    #: number of elementary constraints represented by this term
    count: int = 1
    #: coordinates of the solver vector this term reads (``None`` = all)
    support: Optional[np.ndarray] = None
    #: index of the structure block this term is local to (``None`` = global)
    block: Optional[int] = None

    def local(self, x: np.ndarray) -> np.ndarray:
        return x if self.support is None else x[self.support]

    def slack(self, x: np.ndarray) -> float:
        """Smallest slack of the represented constraints (must stay > 0)."""
        raise NotImplementedError

    def barrier_value(self, x: np.ndarray) -> float:
        """Sum of ``−log(slack_i)`` over the represented constraints."""
        raise NotImplementedError

    def slack_and_barrier(self, x: np.ndarray) -> Tuple[float, float]:
        """Both of the above from a single slack evaluation.

        The line search needs the feasibility check and the merit value at
        every trial point; computing them together halves the slack work
        (see :meth:`BarrierSolver._newton_minimise`).
        """
        raise NotImplementedError

    def grad_hess(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError


class _LinearBlock(_BarrierTerm):
    """Vectorised barrier block for ``G·x ≤ h``."""

    def __init__(
        self,
        G: np.ndarray,
        h: np.ndarray,
        support: Optional[np.ndarray] = None,
        block: Optional[int] = None,
    ) -> None:
        self.G = np.asarray(G, dtype=float)
        self.h = np.asarray(h, dtype=float)
        self.count = int(self.G.shape[0])
        self.support = support
        self.block = block

    def slacks(self, x: np.ndarray) -> np.ndarray:
        return self.h - self.G @ self.local(x)

    def slack(self, x: np.ndarray) -> float:
        if self.count == 0:
            return 1.0
        return float(np.min(self.slacks(x)))

    def barrier_value(self, x: np.ndarray) -> float:
        s = self.slacks(x)
        if np.any(s <= 0.0):
            return math.inf
        return float(-np.sum(np.log(s)))

    def slack_and_barrier(self, x: np.ndarray) -> Tuple[float, float]:
        if self.count == 0:
            return 1.0, 0.0
        s = self.slacks(x)
        smallest = float(np.min(s))
        if smallest <= 0.0:
            return smallest, math.inf
        return smallest, float(-np.sum(np.log(s)))

    def grad_hess(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        s = self.slacks(x)
        inv = 1.0 / s
        grad = self.G.T @ inv
        hess = (self.G * (inv * inv)[:, None]).T @ self.G
        return grad, hess


class _HyperbolicBlock(_BarrierTerm):
    """Vectorised barrier block for a family of hyperbolic constraints.

    All ``(p_i·x + p0_i)(q_i·x + q0_i) ≥ w_i`` terms (positive branch) are
    stacked into matrices so that slack, barrier value, gradient and Hessian
    are computed with a handful of BLAS calls instead of a Python loop over
    the constraints.
    """

    def __init__(
        self,
        hyps: Sequence[CompiledHyperbolic],
        support: Optional[np.ndarray] = None,
        block: Optional[int] = None,
    ) -> None:
        self.P = np.vstack([np.asarray(h.p, dtype=float) for h in hyps])
        self.p0 = np.array([float(h.p0) for h in hyps])
        self.Q = np.vstack([np.asarray(h.q, dtype=float) for h in hyps])
        self.q0 = np.array([float(h.q0) for h in hyps])
        self.w = np.array([float(h.bound) for h in hyps])
        self.count = len(hyps)
        self.support = support
        self.block = block

    def _pqf(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        local = self.local(x)
        pv = self.P @ local + self.p0
        qv = self.Q @ local + self.q0
        return pv, qv, pv * qv - self.w

    def slack(self, x: np.ndarray) -> float:
        pv, qv, f = self._pqf(x)
        branch = np.minimum(pv, qv)
        return float(np.min(np.where(branch <= 0.0, -1.0, f)))

    def barrier_value(self, x: np.ndarray) -> float:
        pv, qv, f = self._pqf(x)
        if np.any(pv <= 0.0) or np.any(qv <= 0.0) or np.any(f <= 0.0):
            return math.inf
        return float(-np.sum(np.log(f)))

    def slack_and_barrier(self, x: np.ndarray) -> Tuple[float, float]:
        pv, qv, f = self._pqf(x)
        branch = np.minimum(pv, qv)
        smallest = float(np.min(np.where(branch <= 0.0, -1.0, f)))
        if smallest <= 0.0:
            return smallest, math.inf
        return smallest, float(-np.sum(np.log(f)))

    def grad_hess(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        pv, qv, f = self._pqf(x)
        inv = 1.0 / f
        # ∇f_i = q_i·P_i + p_i·Q_i, stacked row-wise.
        Gf = self.P * qv[:, None] + self.Q * pv[:, None]
        grad = -(Gf.T @ inv)
        # Σ ∇f∇fᵀ/f² − Σ ∇²f/f with ∇²f_i = P_iQ_iᵀ + Q_iP_iᵀ.
        hess = (Gf * (inv * inv)[:, None]).T @ Gf
        PQ = (self.P * inv[:, None]).T @ self.Q
        hess -= PQ + PQ.T
        return grad, hess


class _ConeBlock(_BarrierTerm):
    """Vectorised barrier block for SOC constraints sharing one norm dimension.

    Cones ``‖A_i·x + b_i‖₂ ≤ c_i·x + d_i`` (branch ``c_i·x + d_i > 0``) whose
    ``A_i`` matrices have the same number of rows are batched into a single
    3-D tensor; callers group cones by row count before constructing blocks.
    """

    def __init__(
        self,
        cones: Sequence[CompiledCone],
        support: Optional[np.ndarray] = None,
        block: Optional[int] = None,
    ) -> None:
        self.A = np.stack([np.asarray(c.A, dtype=float) for c in cones])
        self.b = np.stack([np.asarray(c.b, dtype=float) for c in cones])
        self.C = np.vstack([np.asarray(c.c, dtype=float) for c in cones])
        self.d = np.array([float(c.d) for c in cones])
        self.count = len(cones)
        self.support = support
        self.block = block

    def _uvf(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        local = self.local(x)
        u = self.A @ local + self.b
        v = self.C @ local + self.d
        f = v * v - np.einsum("im,im->i", u, u)
        return u, v, f

    def slack(self, x: np.ndarray) -> float:
        _, v, f = self._uvf(x)
        return float(np.min(np.where(v <= 0.0, -1.0, f)))

    def barrier_value(self, x: np.ndarray) -> float:
        _, v, f = self._uvf(x)
        if np.any(v <= 0.0) or np.any(f <= 0.0):
            return math.inf
        return float(-np.sum(np.log(f)))

    def slack_and_barrier(self, x: np.ndarray) -> Tuple[float, float]:
        _, v, f = self._uvf(x)
        smallest = float(np.min(np.where(v <= 0.0, -1.0, f)))
        if smallest <= 0.0:
            return smallest, math.inf
        return smallest, float(-np.sum(np.log(f)))

    def grad_hess(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        u, v, f = self._uvf(x)
        inv = 1.0 / f
        # ∇f_i = 2v_i·c_i − 2A_iᵀu_i, stacked row-wise.
        Gf = 2.0 * (self.C * v[:, None] - np.einsum("imk,im->ik", self.A, u))
        grad = -(Gf.T @ inv)
        # Σ ∇f∇fᵀ/f² − Σ ∇²f/f with ∇²f_i = 2(c_ic_iᵀ − A_iᵀA_i).
        hess = (Gf * (inv * inv)[:, None]).T @ Gf
        hess -= 2.0 * ((self.C * inv[:, None]).T @ self.C)
        hess += 2.0 * np.einsum("imj,i,imk->jk", self.A, inv, self.A)
        return grad, hess


def _cone_blocks(
    cones: Sequence[CompiledCone],
    support: Optional[np.ndarray] = None,
    block: Optional[int] = None,
) -> List[_ConeBlock]:
    """Batch cones into vectorised blocks, grouped by norm dimension."""
    by_rows: Dict[int, List[CompiledCone]] = {}
    for cone in cones:
        by_rows.setdefault(int(np.asarray(cone.A).shape[0]), []).append(cone)
    return [
        _ConeBlock(group, support=support, block=block)
        for _, group in sorted(by_rows.items())
    ]


def _accumulate_dense(
    terms: Sequence[_BarrierTerm], z: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Assemble the full barrier gradient and Hessian, scattering narrow terms."""
    k = z.size
    grad = np.zeros(k)
    hess = np.zeros((k, k))
    for term in terms:
        g_i, h_i = term.grad_hess(z)
        if term.support is None:
            grad += g_i
            hess += h_i
        else:
            grad[term.support] += g_i
            hess[np.ix_(term.support, term.support)] += h_i
    return grad, hess


def _eq_block(problem: CompiledProblem, rows: np.ndarray, start: int, stop: int) -> np.ndarray:
    """Dense copy of the narrow equality sub-matrix ``A[rows, start:stop]``.

    Sliced from the CSR form so the full dense ``A`` is never materialised
    on the structured path.
    """
    sparse_A = problem.A_sparse
    if sparse_A is not None:
        return np.asarray(sparse_A[rows][:, start:stop].todense())
    return problem.A[rows][:, start:stop].copy()


def _ineq_block(problem: CompiledProblem, rows: np.ndarray, start: int, stop: int) -> np.ndarray:
    """Dense copy of the narrow inequality sub-matrix ``G[rows, start:stop]``."""
    sparse_G = problem.G_sparse
    if sparse_G is not None:
        return np.asarray(sparse_G[rows][:, start:stop].todense())
    return problem.G[rows][:, start:stop].copy()


def _block_nullspace(A_block: np.ndarray, b_block: np.ndarray) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Particular solution and orthonormal null-space basis of one block.

    Uses one pivoted QR factorisation of ``A_blockᵀ`` when scipy is
    available (``A_blockᵀ·P = Q·R`` gives both the min-norm particular
    solution through a triangular solve and the null space as the trailing
    columns of ``Q``), falling back to the historical lstsq + SVD pair
    otherwise.  Returns ``None`` when the block's equalities are
    inconsistent.
    """
    width = A_block.shape[1]
    if _HAVE_SPARSE:
        Q, R, perm = _sp_qr(A_block.T, mode="full", pivoting=True)
        diag = np.abs(np.diag(R)) if R.size else np.zeros(0)
        scale = diag[0] if diag.size else 0.0
        rank = int(np.sum(diag > max(A_block.shape) * np.finfo(float).eps * scale))
        if rank:
            y = _sp_solve_triangular(
                R[:rank, :rank].T, b_block[perm][:rank], lower=True
            )
            x_block = Q[:, :rank] @ y
        else:
            x_block = np.zeros(width)
        basis = Q[:, rank:]
    else:  # pragma: no cover - exercised only without scipy
        x_block, *_ = np.linalg.lstsq(A_block, b_block, rcond=None)
        _, s, vt = np.linalg.svd(A_block, full_matrices=True)
        rank = int(
            np.sum(s > max(A_block.shape) * np.finfo(float).eps * (s[0] if s.size else 0.0))
        )
        basis = vt[rank:].T
    tolerance = 1e-7 * max(1.0, float(np.abs(b_block).max(initial=0.0)))
    if not np.allclose(A_block @ x_block, b_block, atol=tolerance):
        return None
    if basis.size == 0:
        basis = np.zeros((width, 0))
    return x_block, basis


@dataclass
class _BlockEliminationSeed:
    """One block's elimination result, carried between compiled problems.

    Extracted by :func:`transfer_block_eliminations` from a solved problem's
    cached :class:`_ReducedProblem` and validated against the target block's
    own equality data (``A_block``/``b_block``) before the basis is reused —
    a mismatch simply recomputes the SVD, so seeding is always safe.
    """

    A_block: np.ndarray
    b_block: np.ndarray
    x_block: np.ndarray
    basis: np.ndarray


def transfer_block_eliminations(
    source: "CompiledProblem",
    target: "CompiledProblem",
    block_map: Dict[int, int],
) -> int:
    """Seed ``target``'s blockwise elimination with ``source``'s per-block bases.

    ``block_map`` maps *source* block indices to *target* block indices for
    the blocks whose variables (and therefore equality rows) are unchanged —
    in an incrementally edited workload session, every application except the
    added/removed/replaced one.  The next blockwise elimination of ``target``
    then performs one SVD per *new* block only; each seeded block's equality
    data is verified against the stored copy first, so a wrong mapping
    degrades to a recomputation, never to a wrong basis.

    Returns the number of blocks seeded (0 when either problem lacks a usable
    blockwise elimination).
    """
    reduced = source.elimination_cache
    structure = source.block_structure
    if (
        not isinstance(reduced, _ReducedProblem)
        or structure is None
        or reduced.block_slices is None
        or target.block_structure is None
    ):
        return 0
    if structure.equality_blocks.shape[0] != source.b.shape[0]:
        return 0
    seeds: Dict[int, object] = {}
    for source_index, target_index in block_map.items():
        if not 0 <= source_index < structure.num_blocks:
            continue
        if not 0 <= target_index < target.block_structure.num_blocks:
            continue
        start, stop = structure.ranges[source_index]
        rows = np.flatnonzero(structure.equality_blocks == source_index)
        if rows.size == 0:
            # A block without equality rows has nothing to eliminate; the
            # target's elimination never consults a seed for it, so storing
            # one would only retain dead basis copies.
            continue
        basis = reduced.basis_for(source_index)
        if basis is None:
            basis = np.eye(stop - start)
        seeds[target_index] = _BlockEliminationSeed(
            A_block=_eq_block(source, rows, start, stop),
            b_block=source.b[rows].copy(),
            x_block=reduced.x_particular[start:stop].copy(),
            basis=basis.copy(),
        )
    if seeds:
        target.elimination_seed = seeds
    return len(seeds)


@dataclass
class _CenteringResult:
    """Outcome of one :meth:`BarrierSolver._barrier_minimise` run."""

    z: np.ndarray
    status: SolverStatus
    outer: int                 #: outer (centering) iterations
    newton: int                #: Newton iterations summed over the rungs
    final_barrier: float       #: barrier parameter at exit
    #: the centered point of the first rung when that rung was the base
    #: ``initial_barrier`` (the warm-start "interior hint" for related solves)
    first_center: Optional[np.ndarray] = None
    #: whether the last centering met its decrement target (as opposed to
    #: exhausting the Newton budget) — the ``m/t`` gap bound is only trusted
    #: for raised warm rungs when this holds
    converged: bool = True


@dataclass
class _PiecesCache:
    """Solve-invariant parts of the per-block reduction.

    Everything here depends only on ``G``, the cone data and the elimination
    (``A``/``b``) — never on ``h``, the only array parametric re-solves
    mutate.  Cached on the :class:`_ReducedProblem` (itself cached on the
    compiled problem), so a warm-started session pays for the basis
    projections once and refreshes only the ``h``-derived right-hand sides
    per solve.
    """

    block_rows: List[np.ndarray]       #: inequality row indices per block
    block_G: List[np.ndarray]          #: ``G[rows][:, block] @ basis`` per block
    block_offsets: List[np.ndarray]    #: ``G[rows] @ x_p`` per block
    hyps: List[List[CompiledHyperbolic]]
    cones: List[List[CompiledCone]]
    coupling_rows: np.ndarray
    coupling_G: np.ndarray
    coupling_offset: np.ndarray


class _ReducedProblem:
    """A problem restricted to the affine subspace ``x = x_p + N·z``.

    ``N`` is represented in whichever of three forms the elimination
    produced, cheapest first:

    * *identity* — no equality rows at all; ``N = I`` is never materialised
      and every lift/projection is a vector add;
    * *block diagonal* — blockwise elimination; only the per-block bases
      (``ranges[b]`` rows × ``block_slices[b]`` columns) are stored, and
      lift / projection / row reduction run block by block in
      ``O(Σ width·k_b)`` instead of ``O(n·k)``;
    * *dense* — the unstructured fallback stores the full ``(n, k)`` matrix.

    The dense :attr:`nullspace` view is assembled lazily from the blocks
    when a dense-path consumer asks for it.
    """

    def __init__(
        self,
        x_particular: np.ndarray,
        nullspace: Optional[np.ndarray] = None,
        block_slices: Optional[List[slice]] = None,
        *,
        identity: bool = False,
        ranges: Optional[List[Tuple[int, int]]] = None,
        block_bases: Optional[List[Optional[np.ndarray]]] = None,
        blocks_computed: int = 0,
        blocks_reused: int = 0,
    ) -> None:
        self.x_particular = x_particular
        self._nullspace = nullspace
        #: contiguous per-block coordinate slices of the reduced space,
        #: present when the reduction is block partitioned
        self.block_slices = block_slices
        #: ``N = I`` (no equality rows); ``n == k``
        self.identity = identity
        #: per-block variable index ranges matching ``block_slices``
        self.ranges = ranges
        #: per-block null-space bases; ``None`` entries mean the identity
        #: (a block without equality rows keeps all its variables)
        self.block_bases = block_bases
        #: lazily filled solve-invariant reduction products (structured path)
        self.pieces_cache: Optional[_PiecesCache] = None
        #: accounting of the elimination that produced this reduction:
        #: factorisations actually performed vs per-block bases reused from
        #: an :attr:`~repro.solver.problem.CompiledProblem.elimination_seed`
        #: (a dense elimination counts as one computed "block")
        self.blocks_computed = blocks_computed
        self.blocks_reused = blocks_reused

    @property
    def dimension(self) -> int:
        if self._nullspace is not None:
            return self._nullspace.shape[1]
        if self.identity:
            return self.x_particular.size
        return self.block_slices[-1].stop if self.block_slices else 0

    @property
    def nullspace(self) -> np.ndarray:
        """Dense ``(n, k)`` basis, assembled lazily (dense-path consumers only)."""
        if self._nullspace is None:
            n = self.x_particular.size
            if self.identity:
                self._nullspace = np.eye(n)
            else:
                N = np.zeros((n, self.dimension))
                for (start, stop), slc, basis in zip(
                    self.ranges, self.block_slices, self.block_bases
                ):
                    N[start:stop, slc] = (
                        np.eye(stop - start) if basis is None else basis
                    )
                self._nullspace = N
        return self._nullspace

    def basis_for(self, block_index: int) -> Optional[np.ndarray]:
        """Block ``block_index``'s basis; ``None`` means identity."""
        if self.block_bases is not None:
            return self.block_bases[block_index]
        if self.identity:
            return None
        start, stop = self.ranges[block_index]
        return self.nullspace[start:stop, self.block_slices[block_index]]

    def lift(self, z: np.ndarray) -> np.ndarray:
        if self.identity:
            return self.x_particular + z
        if self.block_bases is not None:
            x = self.x_particular.copy()
            for (start, stop), slc, basis in zip(
                self.ranges, self.block_slices, self.block_bases
            ):
                if basis is None:
                    x[start:stop] += z[slc]
                else:
                    x[start:stop] += basis @ z[slc]
            return x
        return self.x_particular + self.nullspace @ z

    def reduce_direction(self, row: np.ndarray) -> np.ndarray:
        if self.identity:
            return np.asarray(row, dtype=float).copy()
        if self.block_bases is not None:
            out = np.empty(self.dimension)
            for (start, stop), slc, basis in zip(
                self.ranges, self.block_slices, self.block_bases
            ):
                if basis is None:
                    out[slc] = row[start:stop]
                else:
                    out[slc] = row[start:stop] @ basis
            return out
        return row @ self.nullspace

    def project(self, x: np.ndarray) -> np.ndarray:
        """Least-squares coordinates of ``x − x_p`` in the basis.

        The blockwise form solves one small least-squares problem per block
        — with a block-diagonal ``N`` the global least-squares problem
        decouples exactly, so this matches the dense projection while
        avoiding the ``O(n·k²)`` full-matrix factorisation that dominated
        warm starts at scale.
        """
        residual = x - self.x_particular
        if self.identity:
            return residual
        if self.block_bases is not None:
            z = np.empty(self.dimension)
            for (start, stop), slc, basis in zip(
                self.ranges, self.block_slices, self.block_bases
            ):
                if basis is None:
                    z[slc] = residual[start:stop]
                else:
                    # Bases are orthonormal (QR/SVD columns), but solve the
                    # block least-squares problem anyway so seeded bases of
                    # any provenance project correctly.
                    z[slc], *_ = np.linalg.lstsq(
                        basis, residual[start:stop], rcond=None
                    )
            return z
        z, *_ = np.linalg.lstsq(self.nullspace, residual, rcond=None)
        return z


@dataclass
class _ReducedPieces:
    """Per-block narrow reduced data of a structured problem (one solve).

    ``linear[b]`` is block ``b``'s reduced inequality rows ``(G, h)`` in its
    own coordinates; ``hyps[b]`` / ``cones[b]`` its reduced non-linear
    constraints; ``coupling`` the full-width reduced coupling rows.  Both the
    phase-II terms and the phase-I relaxation are assembled from these.
    """

    linear: List[Tuple[np.ndarray, np.ndarray]]
    hyps: List[List[CompiledHyperbolic]]
    cones: List[List[CompiledCone]]
    coupling: Tuple[np.ndarray, np.ndarray]


@dataclass
class _StructurePlan:
    """Arrow decomposition of one centering problem.

    ``block_slices`` partition the leading coordinates into per-application
    blocks; ``border`` counts trailing shared coordinates (the phase-I
    relaxation variable ``t``; zero in phase II).  ``block_terms[b]`` holds
    the narrow barrier terms local to block ``b`` (their ``support`` is the
    block's coordinates followed by the border), and ``coupling`` the
    full-width linear rows joining the blocks.
    """

    block_slices: List[slice]
    border: int
    block_terms: List[List[_BarrierTerm]]
    coupling: Optional[_LinearBlock]

    @property
    def terms(self) -> List[_BarrierTerm]:
        """The flat term list (block terms + coupling) for generic loops."""
        flat: List[_BarrierTerm] = [
            term for terms in self.block_terms for term in terms
        ]
        if self.coupling is not None:
            flat.append(self.coupling)
        return flat


class _MeritBundle:
    """Vectorised line-search merit for a structured plan.

    All per-block *linear* terms (plus coupling) are scattered into one CSR
    matrix over the full reduced coordinates, and all *hyperbolic* terms into
    a CSR pair — one trial point then costs a few sparse matvecs instead of a
    Python loop over every block's terms.  Term families without a vectorised
    form (the batched SOC blocks of phase I) stay on the per-term path.

    The merit value is mathematically identical to
    :meth:`BarrierSolver._barrier_merit` over the same terms; only the
    floating-point summation order differs, which the difference-form line
    search is insensitive to.
    """

    def __init__(self, plan: _StructurePlan, k: int) -> None:
        self.G = self.h = self.P = self.Q = None
        self.leftovers: List[_BarrierTerm] = []
        if not _HAVE_SPARSE:  # pragma: no cover - scipy-less fallback
            self.leftovers = list(plan.terms)
            return
        lin_data: List[np.ndarray] = []
        lin_rows: List[np.ndarray] = []
        lin_cols: List[np.ndarray] = []
        lin_h: List[np.ndarray] = []
        lin_count = 0
        hyp_entries: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        hyp_p0: List[np.ndarray] = []
        hyp_q0: List[np.ndarray] = []
        hyp_w: List[np.ndarray] = []
        hyp_count = 0

        def scatter(matrix: np.ndarray, support: Optional[np.ndarray], row_offset: int):
            rows_local, cols_local = np.nonzero(matrix)
            cols = cols_local if support is None else support[cols_local]
            return matrix[rows_local, cols_local], rows_local + row_offset, cols

        for term in plan.terms:
            if isinstance(term, _LinearBlock):
                data, rows, cols = scatter(term.G, term.support, lin_count)
                lin_data.append(data)
                lin_rows.append(rows)
                lin_cols.append(cols)
                lin_h.append(term.h)
                lin_count += term.count
            elif isinstance(term, _HyperbolicBlock):
                for matrix in (term.P, term.Q):
                    hyp_entries.append(scatter(matrix, term.support, hyp_count))
                hyp_p0.append(term.p0)
                hyp_q0.append(term.q0)
                hyp_w.append(term.w)
                hyp_count += term.count
            else:
                self.leftovers.append(term)

        if lin_count:
            self.G = _sp.csr_matrix(
                (
                    np.concatenate(lin_data),
                    (np.concatenate(lin_rows), np.concatenate(lin_cols)),
                ),
                shape=(lin_count, k),
            )
            self.h = np.concatenate(lin_h)
        if hyp_count:
            p_parts = hyp_entries[0::2]
            q_parts = hyp_entries[1::2]
            self.P = _sp.csr_matrix(
                (
                    np.concatenate([e[0] for e in p_parts]),
                    (
                        np.concatenate([e[1] for e in p_parts]),
                        np.concatenate([e[2] for e in p_parts]),
                    ),
                ),
                shape=(hyp_count, k),
            )
            self.Q = _sp.csr_matrix(
                (
                    np.concatenate([e[0] for e in q_parts]),
                    (
                        np.concatenate([e[1] for e in q_parts]),
                        np.concatenate([e[2] for e in q_parts]),
                    ),
                ),
                shape=(hyp_count, k),
            )
            self.p0 = np.concatenate(hyp_p0)
            self.q0 = np.concatenate(hyp_q0)
            self.w = np.concatenate(hyp_w)

    def merit(self, z: np.ndarray) -> float:
        """Barrier value ``φ(z)``; ``+inf`` when any slack is non-positive."""
        total = 0.0
        if self.G is not None:
            s = self.h - self.G @ z
            if s.size and float(s.min()) <= 0.0:
                return math.inf
            total -= float(np.sum(np.log(s)))
        if self.P is not None:
            pv = self.P @ z + self.p0
            qv = self.Q @ z + self.q0
            f = pv * qv - self.w
            if (
                float(pv.min(initial=1.0)) <= 0.0
                or float(qv.min(initial=1.0)) <= 0.0
                or float(f.min(initial=1.0)) <= 0.0
            ):
                return math.inf
            total -= float(np.sum(np.log(f)))
        for term in self.leftovers:
            slack, value = term.slack_and_barrier(z)
            if slack <= 0.0:
                return math.inf
            total += value
        return total


class _StructuredWorkspace:
    """Preallocated hot-loop state for one structured centering run.

    Owns the right-hand-side / solution buffers of the arrow solve (the
    coupling columns ``Gcᵀ`` are written **once** — they are constant across
    Newton iterations, only the gradient column changes), the per-block local
    Hessian buffers, and the batched factorisation groups: blocks of equal
    width are stacked into one ``(B, w, w)`` tensor and factorised with a
    single batched Cholesky (the positive-definiteness check that triggers
    the dense fallback) followed by one batched solve, so the per-iteration
    Python cost no longer scales with a per-block pair of LAPACK calls.
    Blocks wider than :attr:`BarrierOptions.sparse_block_width` are instead
    factorised sparsely via :func:`scipy.sparse.linalg.splu`.

    The Hessian assembled here is identical to the dense path's (including
    the trace-scaled Tikhonov regularisation), so both paths produce the
    same Newton iterates up to floating-point rounding.
    """

    def __init__(
        self,
        plan: _StructurePlan,
        k: int,
        options: BarrierOptions,
        sparse_stats: Optional[Dict[str, float]] = None,
    ) -> None:
        self.plan = plan
        self.options = options
        self.stats = sparse_stats if sparse_stats is not None else {
            "factorization_time": 0.0,
            "schur_time": 0.0,
            "block_factorizations": 0,
        }
        self.k = k
        self.border = plan.border
        coupling = plan.coupling
        self.m = int(coupling.count) if coupling is not None else 0
        cols = 1 + self.m
        self.cols = cols
        self.rhs = np.empty((k, cols))
        if self.m:
            self.rhs[:, 1:] = coupling.G.T
            self._coupling_sq = np.einsum("ij,ij->i", coupling.G, coupling.G)
        self.solved = np.empty((k, cols))
        self.grad = np.empty(k)
        #: (slc, width, terms, local Hessian buffer) per block
        self.block_infos: List[Tuple[slice, int, List[_BarrierTerm], np.ndarray]] = []
        groups: Dict[int, List[int]] = {}
        self.splu_blocks: List[int] = []
        for index, (slc, terms) in enumerate(
            zip(plan.block_slices, plan.block_terms)
        ):
            width = slc.stop - slc.start
            local = np.zeros((width + self.border, width + self.border))
            self.block_infos.append((slc, width, terms, local))
            if width == 0:
                continue
            if width >= options.sparse_block_width and _HAVE_SPARSE:
                self.splu_blocks.append(index)
            else:
                groups.setdefault(width, []).append(index)
        #: batched groups: (member block indices, width, H stack, rhs stack)
        self.batch_groups: List[Tuple[List[int], int, np.ndarray, np.ndarray]] = [
            (
                members,
                width,
                np.empty((len(members), width, width)),
                np.empty((len(members), width, cols + self.border)),
            )
            for width, members in sorted(groups.items())
        ]
        self._border_parts: Dict[int, np.ndarray] = {}
        self.merit_bundle = _MeritBundle(plan, k)

    def merit(self, z: np.ndarray) -> float:
        return self.merit_bundle.merit(z)

    def direction(
        self, z: np.ndarray, grad_objective: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One Newton direction via batched block factorisations + Schur.

        The Hessian of the centering problem is ``H = H₀ + Gcᵀ·W·Gc`` with
        ``H₀`` bordered block diagonal (per-application blocks, plus the
        phase-I relaxation column as a border) and ``W = diag(1/s²)`` over
        the coupling-row slacks.  ``H₀⁻¹`` is applied through per-block
        factorisations and the border's Schur complement; the coupling's
        low-rank term is folded in through the matrix-inversion lemma — its
        Schur matrix has coupling-row dimension (the number of shared
        processors and memories), so the cost per step is the sum of the
        per-block factorisations instead of one cube of the full size.

        Raises :class:`numpy.linalg.LinAlgError` when any block is not
        positive definite, which the Newton loop catches to fall back to
        the dense solve.
        """
        plan = self.plan
        k, border, m, cols = self.k, self.border, self.m, self.cols
        blocks_end = k - border
        grad = self.grad
        grad[:] = grad_objective
        trace = 0.0
        for slc, width, terms, local in self.block_infos:
            local.fill(0.0)
            for term in terms:
                g_i, h_i = term.grad_hess(z)
                local += h_i
                grad[slc] += g_i[:width]
                if border:
                    grad[blocks_end:] += g_i[width:]
            trace += float(np.trace(local))

        coupling = plan.coupling
        W = Gc = None
        if m:
            s = coupling.slacks(z)
            inv = 1.0 / s
            grad += coupling.G.T @ inv
            W = inv * inv
            Gc = coupling.G
            trace += float(W @ self._coupling_sq)

        reg = self.options.regularization * (1.0 + trace / max(k, 1))
        rhs = self.rhs
        rhs[:, 0] = grad
        solved = self.solved

        factor_start = time.perf_counter()
        if border:
            schur = reg * np.eye(border)
            cross_rhs = np.zeros((border, cols))
            self._border_parts.clear()
            # Border-border curvature of every block (including width-0
            # blocks, e.g. the phase-I lower-bound row on t).
            for slc, width, terms, local in self.block_infos:
                schur += local[width:, width:]

        for members, width, H_stack, R_stack in self.batch_groups:
            for j, index in enumerate(members):
                slc, _, _, local = self.block_infos[index]
                H_stack[j] = local[:width, :width]
                R_stack[j, :, :cols] = rhs[slc]
                if border:
                    R_stack[j, :, cols:] = local[:width, width:]
            H_stack[:, np.arange(width), np.arange(width)] += reg
            # Batched Cholesky is the positive-definiteness check (raises
            # LinAlgError → dense fallback); the batched LU solve then
            # produces all block solutions in one LAPACK call.
            np.linalg.cholesky(H_stack)
            sol = np.linalg.solve(H_stack, R_stack)
            self.stats["block_factorizations"] += len(members)
            for j, index in enumerate(members):
                slc, _, _, local = self.block_infos[index]
                solved[slc] = sol[j, :, :cols]
                if border:
                    cross = local[:width, width:]
                    cross_rhs += cross.T @ sol[j, :, :cols]
                    schur -= cross.T @ sol[j, :, cols:]
                    self._border_parts[index] = sol[j, :, cols:]

        for index in self.splu_blocks:
            slc, width, terms, local = self.block_infos[index]
            diag = local[:width, :width] + reg * np.eye(width)
            block_rhs = np.hstack([rhs[slc], local[:width, width:]])
            try:
                lu = _sp_splu(_sp.csc_matrix(diag))
                block_solution = lu.solve(block_rhs)
            except RuntimeError as error:  # singular factor → dense fallback
                raise np.linalg.LinAlgError(str(error)) from error
            self.stats["block_factorizations"] += 1
            solved[slc] = block_solution[:, :cols]
            if border:
                cross = local[:width, width:]
                cross_rhs += cross.T @ block_solution[:, :cols]
                schur -= cross.T @ block_solution[:, cols:]
                self._border_parts[index] = block_solution[:, cols:]
        self.stats["factorization_time"] += time.perf_counter() - factor_start

        schur_start = time.perf_counter()
        if border:
            border_solution = _spd_solve(schur, rhs[blocks_end:] - cross_rhs)
            for index, q_part in self._border_parts.items():
                slc = self.block_infos[index][0]
                solved[slc] -= q_part @ border_solution
            solved[blocks_end:] = border_solution
        if m:
            base = solved[:, 0]
            lifted = solved[:, 1:]
            # Matrix-inversion lemma: (W⁻¹ + Gc·H₀⁻¹·Gcᵀ) is the coupling
            # Schur complement of the arrow-structured KKT system.
            schur_c = np.diag(1.0 / W) + Gc @ lifted
            weights = np.linalg.solve(schur_c, Gc @ base)
            direction = -(base - lifted @ weights)
        else:
            direction = -solved[:, 0]
        self.stats["schur_time"] += time.perf_counter() - schur_start
        return grad, direction


class BarrierSolver:
    """Two-phase log-barrier interior-point solver."""

    def __init__(self, options: Optional[BarrierOptions] = None) -> None:
        self.options = options or BarrierOptions()

    # -- public entry point -------------------------------------------------
    def solve(
        self,
        problem: CompiledProblem,
        initial_point: Optional[np.ndarray] = None,
        interior_point: Optional[np.ndarray] = None,
    ) -> Solution:
        """Solve ``problem``; both hint points are optional.

        ``initial_point`` is the primary start (warm-start or heuristic).
        ``interior_point`` is a well-interior fallback — typically the
        first-rung central point of a related previous solve: it is tried for
        the phase-I skip when ``initial_point`` is infeasible, and phase II
        restarts from it at the base rung when the primary point sits too
        close to the boundary to be worth re-centering from.
        """
        opts = self.options
        n = problem.num_variables

        if n == 0:
            return Solution(
                status=SolverStatus.OPTIMAL,
                objective=problem.c0,
                values={},
                backend="barrier",
            )

        reduced, eq_status, elimination_computed = self._eliminate_equalities(
            problem
        )
        if eq_status is not None:
            return eq_status

        #: Newton iterations that fell back to the dense solve because a
        #: block factorisation failed; reset per solve, reported in stats.
        self._structured_fallbacks = 0
        #: Sparse-backend accounting shared by every workspace of this solve
        #: (phase I, warm-rung probing, phase II); reset per solve.
        self._sparse_stats = {
            "factorization_time": 0.0,
            "schur_time": 0.0,
            "block_factorizations": 0,
        }
        self._pieces_cache_hit = False
        terms, plan, pieces = self._phase2_terms(problem, reduced)
        workspace = (
            _StructuredWorkspace(
                plan, reduced.dimension, opts, self._sparse_stats
            )
            if plan is not None
            else None
        )
        c_reduced = reduced.reduce_direction(problem.c)
        total_constraints = sum(term.count for term in terms)

        if total_constraints == 0:
            # Unconstrained affine minimisation: bounded only if c == 0.
            if np.allclose(c_reduced, 0.0):
                x = reduced.lift(np.zeros(reduced.dimension))
                return Solution(
                    status=SolverStatus.OPTIMAL,
                    objective=problem.objective_value(x),
                    values=problem.point_as_mapping(x),
                    backend="barrier",
                )
            return Solution(
                status=SolverStatus.UNBOUNDED,
                backend="barrier",
                message="no constraints and a non-zero objective",
            )

        z0 = self._initial_reduced_point(problem, reduced, initial_point)
        z_interior: Optional[np.ndarray] = None
        if interior_point is not None:
            z_interior = self._initial_reduced_point(problem, reduced, interior_point)
        fallbacks = [z_interior] if z_interior is not None else []
        with obs_span("phase1") as phase1_span:
            z_feasible, feasibility, phase1 = self._phase_one(
                problem, reduced, z0, fallbacks=fallbacks, pieces=pieces
            )
            phase1_span.set(
                skipped=bool(phase1["skipped"]),
                newton_iterations=int(phase1["newton_iterations"]),
            )
        phase1_time = phase1_span.seconds
        stats: Dict[str, object] = {
            "phase1_skipped": bool(phase1["skipped"]),
            "phase1_newton_iterations": int(phase1["newton_iterations"]),
            "newton_iterations": 0,
            "outer_iterations": 0,
            "structured": plan is not None,
            "elimination_computed": bool(elimination_computed),
            # Per-block elimination accounting of *this* solve: SVDs actually
            # performed vs bases reused from an elimination seed (both 0 on an
            # elimination-cache hit, where nothing was eliminated at all).
            "elimination_blocks_computed": (
                int(reduced.blocks_computed) if elimination_computed else 0
            ),
            "elimination_blocks_reused": (
                int(reduced.blocks_reused) if elimination_computed else 0
            ),
            "phase1_time": phase1_time,
            "centering_time": 0.0,
        }
        if plan is not None:
            # Iterations the structured path handed to the dense solve
            # because a block factorisation failed (0 in the common case).
            stats["structured_fallback_iterations"] = int(
                self._structured_fallbacks
            )
        if z_feasible is None:
            self._attach_sparse_stats(stats, problem, plan)
            self._record_metrics(stats, optimal=False)
            return Solution(
                status=SolverStatus.INFEASIBLE,
                backend="barrier",
                message=f"phase I ended with infeasibility {feasibility:.3e}",
                stats=stats,
            )

        # Phase-II start selection for warm-started re-solves.  When the warm
        # point is (nearly) centered for a high barrier rung, restart there
        # and skip the early rungs entirely; otherwise prefer the interior
        # hint at the base rung — re-centering from a well-interior point is
        # far cheaper than crawling away from the boundary the previous
        # optimum sits on.
        initial_barrier: Optional[float] = None
        z_start = z_feasible
        if opts.centering_barrier is not None:
            # Single fixed-rung centering (decomposed subproblem solves): the
            # caller owns the barrier schedule, so skip warm-rung selection,
            # the rung ladder, and the cold retry entirely.
            with obs_span("centering") as centering_span:
                result = self._barrier_minimise(
                    c_reduced,
                    terms,
                    z_start,
                    fixed_barrier=float(opts.centering_barrier),
                    plan=plan,
                    workspace=workspace,
                )
                centering_span.set(
                    rungs=int(result.outer),
                    newton_iterations=int(result.newton),
                )
            stats["centering_time"] = centering_span.seconds
            stats["newton_iterations"] = int(result.newton)
            stats["outer_iterations"] = int(result.outer)
            stats["final_barrier"] = float(result.final_barrier)
            stats["centering_mode"] = True
            if plan is not None:
                stats["structured_fallback_iterations"] = int(
                    self._structured_fallbacks
                )
            self._attach_sparse_stats(stats, problem, plan)
            x_opt = reduced.lift(result.z)
            objective = problem.objective_value(x_opt)
            self._record_metrics(
                stats, optimal=result.status is SolverStatus.OPTIMAL
            )
            solution = Solution(
                status=result.status,
                objective=objective,
                values=problem.point_as_mapping(x_opt),
                backend="barrier",
                iterations=result.outer,
                stats=stats,
            )
            if result.first_center is not None:
                solution.interior_point = reduced.lift(result.first_center)
            return solution
        if phase1["skipped"] and opts.warm_initial_barrier is not None:
            rung = self._select_warm_rung(
                c_reduced,
                terms,
                z_feasible,
                float(opts.warm_initial_barrier),
                total_constraints,
                opts.tolerance,
                workspace=workspace,
            )
            if rung > opts.initial_barrier:
                initial_barrier = rung
            elif (
                z_interior is not None
                and not np.array_equal(z_interior, z_feasible)
                and all(term.slack(z_interior) > 0.0 for term in terms)
            ):
                z_start = z_interior

        with obs_span("centering") as centering_span:
            result = self._barrier_minimise(
                c_reduced,
                terms,
                z_start,
                initial_barrier=initial_barrier,
                plan=plan,
                workspace=workspace,
            )
            if initial_barrier is not None and not result.converged:
                # The raised rung failed to center within the Newton budget; its
                # gap bound cannot be trusted.  Redo phase II as a cold run.
                retry_start = z_start
                if z_interior is not None and all(
                    term.slack(z_interior) > 0.0 for term in terms
                ):
                    retry_start = z_interior
                with obs_span("cold-retry"):
                    retry = self._barrier_minimise(
                        c_reduced, terms, retry_start, plan=plan,
                        workspace=workspace,
                    )
                retry.newton += result.newton
                retry.outer += result.outer
                result = retry
            centering_span.set(
                rungs=int(result.outer), newton_iterations=int(result.newton)
            )
        stats["centering_time"] = centering_span.seconds

        stats["newton_iterations"] = int(result.newton)
        stats["outer_iterations"] = int(result.outer)
        stats["final_barrier"] = float(result.final_barrier)
        if plan is not None:
            stats["structured_fallback_iterations"] = int(
                self._structured_fallbacks
            )
        self._attach_sparse_stats(stats, problem, plan)
        x_opt = reduced.lift(result.z)
        objective = problem.objective_value(x_opt)

        if abs(objective) > opts.unbounded_threshold:
            self._record_metrics(stats, optimal=False)
            return Solution(
                status=SolverStatus.UNBOUNDED,
                backend="barrier",
                message="objective diverged during the barrier iterations",
                stats=stats,
            )

        self._record_metrics(stats, optimal=result.status is SolverStatus.OPTIMAL)
        solution = Solution(
            status=result.status,
            objective=objective,
            values=problem.point_as_mapping(x_opt),
            backend="barrier",
            iterations=result.outer,
            stats=stats,
        )
        if result.first_center is not None:
            solution.interior_point = reduced.lift(result.first_center)
        return solution

    # -- telemetry ------------------------------------------------------------
    def _attach_sparse_stats(
        self,
        stats: Dict[str, object],
        problem: CompiledProblem,
        plan: Optional[_StructurePlan],
    ) -> None:
        """Fold this solve's sparse-backend accounting into its stats dict.

        ``sparse_nnz`` (constraint-matrix nonzeros) is reported for every
        solve; the factorisation/Schur time split, the block-factorisation
        count and the pieces-cache reuse flag only exist on the structured
        path.
        """
        stats["sparse_nnz"] = int(problem.constraint_nnz)
        if plan is None:
            return
        sparse = self._sparse_stats
        stats["factorization_time"] = float(sparse["factorization_time"])
        stats["schur_time"] = float(sparse["schur_time"])
        stats["block_factorizations"] = int(sparse["block_factorizations"])
        stats["pieces_cache_reused"] = bool(
            getattr(self, "_pieces_cache_hit", False)
        )

    def _record_metrics(self, stats: Dict[str, object], optimal: bool) -> None:
        """Publish one solve's statistics to the metrics registry.

        A single early-return keeps the disabled-telemetry cost at one
        attribute check per solve; with telemetry on, the per-solve stats
        dict feeds the cross-solve counters and iteration histograms that
        ``repro-map sweep --stats`` and the batch aggregation report.
        """
        registry = _metrics_registry()
        if not registry.enabled:
            return
        registry.counter("solver.solves").inc()
        if optimal:
            registry.counter("solver.optimal").inc()
        if stats.get("phase1_skipped"):
            registry.counter("solver.phase1_skipped").inc()
        if stats.get("elimination_computed"):
            registry.counter("solver.elimination_computed").inc()
        registry.counter("solver.elimination_blocks_computed").inc(
            float(stats.get("elimination_blocks_computed", 0))
        )
        registry.counter("solver.elimination_blocks_reused").inc(
            float(stats.get("elimination_blocks_reused", 0))
        )
        if stats.get("structured"):
            registry.counter("solver.structured_solves").inc()
            registry.counter("solver.sparse_solves").inc()
        else:
            registry.counter("solver.dense_solves").inc()
        if stats.get("pieces_cache_reused"):
            registry.counter("solver.pieces_cache_reused").inc()
        if "sparse_nnz" in stats:
            registry.histogram("solver.sparse_nnz").observe(
                float(stats["sparse_nnz"])
            )
        if "factorization_time" in stats:
            registry.histogram("solver.factorization_seconds").observe(
                float(stats["factorization_time"])
            )
            registry.histogram("solver.schur_seconds").observe(
                float(stats["schur_time"])
            )
            registry.counter("solver.block_factorizations").inc(
                float(stats.get("block_factorizations", 0))
            )
        registry.histogram("solver.newton_iterations").observe(
            float(stats.get("newton_iterations", 0))
        )
        registry.histogram("solver.phase1_newton_iterations").observe(
            float(stats.get("phase1_newton_iterations", 0))
        )
        registry.histogram("solver.rungs").observe(
            float(stats.get("outer_iterations", 0))
        )

    # -- setup ----------------------------------------------------------------
    def _eliminate_equalities(
        self, problem: CompiledProblem
    ) -> Tuple[_ReducedProblem, Optional[Solution], bool]:
        """Equality elimination with a per-compiled-problem cache.

        Successful reductions are cached on the compiled problem: the basis
        depends only on ``A`` and ``b``, which parametric re-solves never
        mutate (only ``h`` changes), so a warm-started
        :class:`~repro.solver.parametric.SolveSession` computes the SVDs once
        for the whole sweep.  The third return value reports whether this
        call computed the elimination (``False`` = cache hit), surfaced as
        the ``elimination_computed`` solve statistic.
        """
        cached = problem.elimination_cache
        if isinstance(cached, _ReducedProblem):
            return cached, None, False
        reduced, status = self._compute_elimination(problem)
        if status is None:
            problem.elimination_cache = reduced
            # The seed is one-shot: once an elimination has consumed (or
            # rejected) it, keeping it would only retain dense basis copies
            # for blocks that may no longer exist after session edits —
            # unbounded growth over a long add/remove admission trace.
            problem.elimination_seed = None
        return reduced, status, True

    def _compute_elimination(
        self, problem: CompiledProblem
    ) -> Tuple[_ReducedProblem, Optional[Solution]]:
        n = problem.num_variables
        structure = problem.block_structure
        if problem.b.size == 0:
            block_slices = None
            ranges = None
            block_bases: Optional[List[Optional[np.ndarray]]] = None
            if structure is not None:
                block_slices = [slice(start, stop) for start, stop in structure.ranges]
                ranges = list(structure.ranges)
                block_bases = [None] * structure.num_blocks
            return (
                _ReducedProblem(
                    np.zeros(n),
                    block_slices=block_slices,
                    identity=True,
                    ranges=ranges,
                    block_bases=block_bases,
                ),
                None,
            )

        if structure is not None:
            result = self._blockwise_elimination(problem, structure)
            if result is not None:
                return result

        A, b = problem.A, problem.b
        # Particular solution (least squares) and consistency check.
        x_p, *_ = np.linalg.lstsq(A, b, rcond=None)
        if not np.allclose(A @ x_p, b, atol=1e-7 * max(1.0, float(np.abs(b).max(initial=0.0)))):
            return (
                _ReducedProblem(np.zeros(n), identity=True),
                Solution(
                    status=SolverStatus.INFEASIBLE,
                    backend="barrier",
                    message="equality constraints are inconsistent",
                ),
            )
        # Null-space basis via SVD.
        _, s, vt = np.linalg.svd(A, full_matrices=True)
        rank = int(np.sum(s > max(A.shape) * np.finfo(float).eps * (s[0] if s.size else 0.0)))
        nullspace = vt[rank:].T
        if nullspace.size == 0:
            nullspace = np.zeros((n, 0))
        return _ReducedProblem(x_p, nullspace, blocks_computed=1), None

    def _blockwise_elimination(
        self, problem: CompiledProblem, structure: BlockStructure
    ) -> Optional[Tuple[_ReducedProblem, Optional[Solution]]]:
        """Per-block elimination producing a block-diagonal null-space basis.

        Every equality row of a structured problem is confined to one block
        (multi-block equalities drop the structure at compile time), so the
        null space factors per block: one small pivoted QR per application
        instead of one factorisation of the full equality matrix, and the
        resulting per-block bases keep the reduced problem block partitioned
        without ever materialising the dense ``(n, k)`` null-space matrix.
        Returns ``None`` to fall back to the dense elimination when the
        recorded row assignment is stale.

        Blocks present in the problem's
        :attr:`~repro.solver.problem.CompiledProblem.elimination_seed` (bases
        carried over from a previous compiled problem by
        :func:`transfer_block_eliminations`) skip their SVD when the seed's
        stored equality data matches this problem's — the incremental-session
        case where only the edited application's block pays for elimination.
        """
        n = problem.num_variables
        b = problem.b
        if structure.equality_blocks.shape[0] != b.shape[0]:
            return None
        seeds = problem.elimination_seed or {}
        computed = 0
        reused = 0
        x_p = np.zeros(n)
        basis_blocks: List[Optional[np.ndarray]] = []
        block_slices: List[slice] = []
        offset = 0
        for block_index, (start, stop) in enumerate(structure.ranges):
            rows = np.flatnonzero(structure.equality_blocks == block_index)
            width = stop - start
            if rows.size == 0:
                basis = None  # identity: the block keeps all its variables
                basis_width = width
            else:
                A_block = _eq_block(problem, rows, start, stop)
                b_block = b[rows]
                seed = seeds.get(block_index)
                if (
                    isinstance(seed, _BlockEliminationSeed)
                    and seed.A_block.shape == A_block.shape
                    and np.array_equal(seed.A_block, A_block)
                    and np.array_equal(seed.b_block, b_block)
                ):
                    x_p[start:stop] = seed.x_block
                    basis = seed.basis
                    basis_width = basis.shape[1]
                    reused += 1
                    basis_blocks.append(basis)
                    block_slices.append(slice(offset, offset + basis_width))
                    offset += basis_width
                    continue
                result = _block_nullspace(A_block, b_block)
                if result is None:
                    return (
                        _ReducedProblem(np.zeros(n), identity=True),
                        Solution(
                            status=SolverStatus.INFEASIBLE,
                            backend="barrier",
                            message="equality constraints are inconsistent",
                        ),
                    )
                x_block, basis = result
                x_p[start:stop] = x_block
                basis_width = basis.shape[1]
                computed += 1
            basis_blocks.append(basis)
            block_slices.append(slice(offset, offset + basis_width))
            offset += basis_width
        return (
            _ReducedProblem(
                x_p,
                block_slices=block_slices,
                ranges=list(structure.ranges),
                block_bases=basis_blocks,
                blocks_computed=computed,
                blocks_reused=reused,
            ),
            None,
        )

    def _structure_enabled(
        self, structure: Optional[BlockStructure], reduced: _ReducedProblem
    ) -> bool:
        """Whether to run the structured Newton path for this solve."""
        if structure is None or reduced.block_slices is None:
            return False
        if reduced.dimension == 0:
            return False
        opts = self.options
        if opts.structured is False:
            return False
        if opts.structured is True:
            return True
        # Auto: at least two coupled blocks and a coupling narrow enough that
        # the Schur complement stays far smaller than the full system.
        coupling = int(structure.coupling_rows.size)
        return structure.num_blocks >= 2 and coupling <= max(
            4, reduced.dimension // 2
        )

    def _phase2_terms(
        self, problem: CompiledProblem, reduced: _ReducedProblem
    ) -> Tuple[List[_BarrierTerm], Optional[_StructurePlan], Optional[_ReducedPieces]]:
        """Phase-II barrier terms, structured (narrow per block) when possible."""
        structure = problem.block_structure
        if not self._structure_enabled(structure, reduced):
            return self._reduced_terms(problem, reduced), None, None
        pieces = self._reduced_pieces(problem, reduced, structure)
        plan = self._structured_plan(pieces, reduced)
        return plan.terms, plan, pieces

    def _reduced_pieces(
        self,
        problem: CompiledProblem,
        reduced: _ReducedProblem,
        structure: BlockStructure,
    ) -> _ReducedPieces:
        """Reduce each block's constraints through its own null-space basis.

        Equivalent to the dense ``G @ N`` reductions of
        :meth:`_reduced_terms`, but block by block: with a block-diagonal
        basis, a block-local row only meets its own basis columns, so each
        product is narrow — the reduction cost drops from
        ``O(rows·n·k)`` to the sum of the per-block products.

        The basis projections depend only on ``G``/cone data and the cached
        elimination, so they are computed once per compiled problem
        (:class:`_PiecesCache` on the reduced problem); each solve refreshes
        only the ``h``-derived right-hand sides — the one array parametric
        re-solves mutate.
        """
        cache = reduced.pieces_cache
        #: whether this solve reused the cached basis projections (surfaced
        #: as the ``pieces_cache_reused`` stat → SessionStats sparse reuse)
        self._pieces_cache_hit = cache is not None
        if cache is None:
            cache = self._build_pieces_cache(problem, reduced, structure)
            reduced.pieces_cache = cache
        linear = [
            (G, problem.h[rows] - offset)
            for G, rows, offset in zip(
                cache.block_G, cache.block_rows, cache.block_offsets
            )
        ]
        if cache.coupling_rows.size:
            coupling = (
                cache.coupling_G,
                problem.h[cache.coupling_rows] - cache.coupling_offset,
            )
        else:
            coupling = (cache.coupling_G, np.zeros(0))
        return _ReducedPieces(
            linear=linear, hyps=cache.hyps, cones=cache.cones, coupling=coupling
        )

    def _build_pieces_cache(
        self,
        problem: CompiledProblem,
        reduced: _ReducedProblem,
        structure: BlockStructure,
    ) -> _PiecesCache:
        xp = reduced.x_particular
        block_rows: List[np.ndarray] = []
        block_G: List[np.ndarray] = []
        block_offsets: List[np.ndarray] = []
        hyps: List[List[CompiledHyperbolic]] = []
        cones: List[List[CompiledCone]] = []
        coupling_parts: List[np.ndarray] = []
        coupling_rows = structure.coupling_rows
        # Group constraints by owning block up front (one pass each) instead
        # of scanning every constraint once per block.
        hyps_by_block: Dict[int, List[CompiledHyperbolic]] = {}
        for hyp, owner in zip(problem.hyperbolic, structure.hyperbolic_blocks):
            hyps_by_block.setdefault(owner, []).append(hyp)
        cones_by_block: Dict[int, List[CompiledCone]] = {}
        for cone, owner in zip(problem.cones, structure.cone_blocks):
            cones_by_block.setdefault(owner, []).append(cone)
        for block_index, ((start, stop), slc) in enumerate(
            zip(structure.ranges, reduced.block_slices)
        ):
            basis = reduced.basis_for(block_index)
            basis_width = slc.stop - slc.start
            xp_block = xp[start:stop]
            rows = np.flatnonzero(structure.row_blocks == block_index)
            block_rows.append(rows)
            if rows.size:
                G_narrow = _ineq_block(problem, rows, start, stop)
                block_G.append(G_narrow if basis is None else G_narrow @ basis)
                block_offsets.append(G_narrow @ xp_block)
            else:
                block_G.append(np.zeros((0, basis_width)))
                block_offsets.append(np.zeros(0))

            def reduce_row(vec: np.ndarray) -> np.ndarray:
                narrow = vec[start:stop]
                return narrow.copy() if basis is None else narrow @ basis

            hyps.append(
                [
                    CompiledHyperbolic(
                        p=reduce_row(hyp.p),
                        p0=float(hyp.p[start:stop] @ xp_block + hyp.p0),
                        q=reduce_row(hyp.q),
                        q0=float(hyp.q[start:stop] @ xp_block + hyp.q0),
                        bound=hyp.bound,
                    )
                    for hyp in hyps_by_block.get(block_index, [])
                ]
            )
            cones.append(
                [
                    CompiledCone(
                        A=(
                            cone.A[:, start:stop].copy()
                            if basis is None
                            else cone.A[:, start:stop] @ basis
                        ),
                        b=cone.A[:, start:stop] @ xp_block + cone.b,
                        c=reduce_row(cone.c),
                        d=float(cone.c[start:stop] @ xp_block + cone.d),
                    )
                    for cone in cones_by_block.get(block_index, [])
                ]
            )
            if coupling_rows.size:
                Gc_narrow = _ineq_block(problem, coupling_rows, start, stop)
                coupling_parts.append(
                    Gc_narrow if basis is None else Gc_narrow @ basis
                )
        if coupling_rows.size:
            coupling_G = np.hstack(coupling_parts)
            coupling_offset = np.asarray(
                problem._apply_G(xp)[coupling_rows], dtype=float
            )
        else:
            coupling_G = np.zeros((0, reduced.dimension))
            coupling_offset = np.zeros(0)
        return _PiecesCache(
            block_rows=block_rows,
            block_G=block_G,
            block_offsets=block_offsets,
            hyps=hyps,
            cones=cones,
            coupling_rows=coupling_rows,
            coupling_G=coupling_G,
            coupling_offset=coupling_offset,
        )

    def _structured_plan(
        self, pieces: _ReducedPieces, reduced: _ReducedProblem
    ) -> _StructurePlan:
        """Phase-II (borderless) plan: narrow per-block terms + coupling rows."""
        block_terms: List[List[_BarrierTerm]] = []
        for (G, h), hyp_list, cone_list, slc in zip(
            pieces.linear, pieces.hyps, pieces.cones, reduced.block_slices
        ):
            support = np.arange(slc.start, slc.stop)
            block_index = len(block_terms)
            terms: List[_BarrierTerm] = []
            if G.shape[0]:
                terms.append(_LinearBlock(G, h, support=support, block=block_index))
            if hyp_list:
                terms.append(
                    _HyperbolicBlock(hyp_list, support=support, block=block_index)
                )
            terms.extend(_cone_blocks(cone_list, support=support, block=block_index))
            block_terms.append(terms)
        Gc, hc = pieces.coupling
        coupling = _LinearBlock(Gc, hc) if Gc.shape[0] else None
        return _StructurePlan(
            block_slices=list(reduced.block_slices),
            border=0,
            block_terms=block_terms,
            coupling=coupling,
        )

    def _reduced_terms(
        self, problem: CompiledProblem, reduced: _ReducedProblem
    ) -> List[_BarrierTerm]:
        """Barrier terms of the phase-II problem, expressed in reduced coordinates."""
        xp = reduced.x_particular
        N = None if reduced.identity else reduced.nullspace
        terms: List[_BarrierTerm] = []
        if problem.h.size:
            G_reduced = problem.G if N is None else problem.G @ N
            terms.append(_LinearBlock(G_reduced, problem.h - problem.G @ xp))
        if problem.hyperbolic:
            terms.append(
                _HyperbolicBlock(
                    [
                        CompiledHyperbolic(
                            p=hyp.p if N is None else hyp.p @ N,
                            p0=float(hyp.p @ xp + hyp.p0),
                            q=hyp.q if N is None else hyp.q @ N,
                            q0=float(hyp.q @ xp + hyp.q0),
                            bound=hyp.bound,
                        )
                        for hyp in problem.hyperbolic
                    ]
                )
            )
        terms.extend(
            _cone_blocks(
                [
                    CompiledCone(
                        A=cone.A if N is None else cone.A @ N,
                        b=cone.A @ xp + cone.b,
                        c=cone.c if N is None else cone.c @ N,
                        d=float(cone.c @ xp + cone.d),
                    )
                    for cone in problem.cones
                ]
            )
        )
        return terms

    def _initial_reduced_point(
        self,
        problem: CompiledProblem,
        reduced: _ReducedProblem,
        initial_point: Optional[np.ndarray],
    ) -> np.ndarray:
        if initial_point is not None:
            x0 = np.asarray(initial_point, dtype=float)
            # Project onto the affine subspace of the equality constraints
            # (blockwise / identity-aware — no dense (n, k) factorisation).
            return reduced.project(x0)
        return np.zeros(reduced.dimension)

    # -- phase I -----------------------------------------------------------------
    def _phase_one(
        self,
        problem: CompiledProblem,
        reduced: _ReducedProblem,
        z0: np.ndarray,
        fallbacks: Sequence[np.ndarray] = (),
        pieces: Optional[_ReducedPieces] = None,
    ) -> Tuple[Optional[np.ndarray], float, Dict[str, object]]:
        """Find a strictly feasible reduced point, or report infeasibility.

        ``z0`` and then each entry of ``fallbacks`` is checked for strict
        feasibility; the first hit skips the phase entirely.  Otherwise the
        auxiliary relaxation program runs from ``z0`` — with the structured
        Newton machinery when ``pieces`` is given (the relaxation variable
        ``t`` becomes the one-column *border* of the arrow system, since
        every relaxed constraint touches it).

        Returns the feasible reduced point (or ``None``), the final
        infeasibility measure, and phase-I statistics (whether the phase was
        skipped because a candidate was already strictly feasible, and how
        many Newton iterations the auxiliary program took).

        The phase-I program is ``min t`` over ``(z, t)`` subject to every
        constraint relaxed by ``t``:

        * linear:      ``g·x − h ≤ t``
        * hyperbolic:  ``‖(2√w, p − q)‖ ≤ p + q + t``   (SOC form)
        * SOC:         ``‖u(x)‖ ≤ v(x) + t``
        """
        opts = self.options
        x0 = reduced.lift(z0)
        needed = self._required_relaxation(problem, x0)
        if needed < -opts.feasibility_margin:
            return z0, needed, {"skipped": True, "newton_iterations": 0}
        for candidate in fallbacks:
            required = self._required_relaxation(problem, reduced.lift(candidate))
            if required < -opts.feasibility_margin:
                return candidate, required, {"skipped": True, "newton_iterations": 0}

        k = reduced.dimension
        # Keep the phase-I objective bounded below.
        lower_bound = -max(1.0, abs(needed))
        if pieces is not None:
            phase_terms, phase_plan = self._phase_one_structured(
                reduced, pieces, lower_bound
            )
        else:
            phase_terms = self._phase_one_dense(problem, reduced, lower_bound)
            phase_plan = None

        t0 = needed + max(1.0, 0.1 * abs(needed))
        zt = np.concatenate([z0, [t0]])
        c_phase = np.concatenate([np.zeros(k), [1.0]])

        # Stop as soon as the point is comfortably interior; a modest negative
        # slack is enough for phase II, and insisting on a large one would
        # never terminate early on problems whose feasible region is thin.
        target = -max(1e-3, 1e3 * opts.feasibility_margin)

        def early_stop(point: np.ndarray) -> bool:
            return point[-1] < target

        phase_result = self._barrier_minimise(
            c_phase,
            phase_terms,
            zt,
            early_stop=early_stop,
            gap_tolerance=1e-3,
            plan=phase_plan,
        )
        zt_opt = phase_result.z
        stats = {"skipped": False, "newton_iterations": phase_result.newton}
        t_final = float(zt_opt[-1])
        if t_final < -opts.feasibility_margin:
            return zt_opt[:-1], t_final, stats
        return None, t_final, stats

    def _phase_one_dense(
        self,
        problem: CompiledProblem,
        reduced: _ReducedProblem,
        lower_bound: float,
    ) -> List[_BarrierTerm]:
        """Full-width phase-I terms over ``(z, t)`` (the unstructured path)."""
        k = reduced.dimension
        N = None if reduced.identity else reduced.nullspace
        xp = reduced.x_particular
        phase_cones: List[CompiledCone] = []
        phase_terms: List[_BarrierTerm] = []

        def _augment(row: np.ndarray, extra: float) -> np.ndarray:
            return np.concatenate([row if N is None else row @ N, [extra]])

        if problem.h.size:
            G_reduced = problem.G if N is None else problem.G @ N
            G_aug = np.hstack([G_reduced, -np.ones((G_reduced.shape[0], 1))])
            h_aug = problem.h - problem.G @ xp
            phase_terms.append(_LinearBlock(G_aug, h_aug))
        for hyp in problem.hyperbolic:
            p_row = _augment(hyp.p, 0.0)
            q_row = _augment(hyp.q, 0.0)
            p0 = float(hyp.p @ xp + hyp.p0)
            q0 = float(hyp.q @ xp + hyp.q0)
            A = np.vstack([np.zeros(k + 1), p_row - q_row])
            b = np.array([2.0 * math.sqrt(hyp.bound), p0 - q0])
            c = p_row + q_row
            c[-1] = 1.0
            phase_cones.append(CompiledCone(A=A, b=b, c=c, d=p0 + q0, name="phase1"))
        for cone in problem.cones:
            A_reduced = cone.A if N is None else cone.A @ N
            A = np.hstack([A_reduced, np.zeros((cone.A.shape[0], 1))])
            b = cone.A @ xp + cone.b
            c = _augment(cone.c, 1.0)
            d = float(cone.c @ xp + cone.d)
            phase_cones.append(CompiledCone(A=A, b=b, c=c, d=d, name="phase1"))
        phase_terms.extend(_cone_blocks(phase_cones))
        phase_terms.append(
            _LinearBlock(
                np.concatenate([np.zeros(k), [-1.0]]).reshape(1, -1),
                np.array([-lower_bound]),
            )
        )
        return phase_terms

    def _phase_one_structured(
        self,
        reduced: _ReducedProblem,
        pieces: _ReducedPieces,
        lower_bound: float,
    ) -> Tuple[List[_BarrierTerm], _StructurePlan]:
        """Narrow phase-I terms over ``(z, t)``: ``t`` is the arrow's border.

        Each relaxed constraint stays local to its block plus the shared
        relaxation column, so block ``b``'s terms live in the coordinates
        ``[block b, t]`` and the per-block factorisation carries over to
        phase I unchanged; the coupling rows (now with a ``−t`` column) go
        through the Schur complement as before.
        """
        k = reduced.dimension
        block_terms: List[List[_BarrierTerm]] = []
        for block_index, ((G, h), hyp_list, cone_list, slc) in enumerate(
            zip(pieces.linear, pieces.hyps, pieces.cones, reduced.block_slices)
        ):
            width = slc.stop - slc.start
            support = np.concatenate([np.arange(slc.start, slc.stop), [k]])
            terms: List[_BarrierTerm] = []
            rows: List[np.ndarray] = []
            rhs: List[np.ndarray] = []
            if G.shape[0]:
                rows.append(np.hstack([G, -np.ones((G.shape[0], 1))]))
                rhs.append(h)
            if block_index == 0:
                # The phase-I objective's lower bound (−t ≤ −lower_bound):
                # border-only, homed in the first block's local term.
                rows.append(
                    np.concatenate([np.zeros(width), [-1.0]]).reshape(1, -1)
                )
                rhs.append(np.array([-lower_bound]))
            if rows:
                terms.append(
                    _LinearBlock(
                        np.vstack(rows),
                        np.concatenate(rhs),
                        support=support,
                        block=block_index,
                    )
                )
            phase_cones: List[CompiledCone] = []
            for hyp in hyp_list:
                p_row = np.concatenate([hyp.p, [0.0]])
                q_row = np.concatenate([hyp.q, [0.0]])
                A = np.vstack([np.zeros(width + 1), p_row - q_row])
                b = np.array([2.0 * math.sqrt(hyp.bound), hyp.p0 - hyp.q0])
                c = p_row + q_row
                c[-1] = 1.0
                phase_cones.append(
                    CompiledCone(A=A, b=b, c=c, d=hyp.p0 + hyp.q0, name="phase1")
                )
            for cone in cone_list:
                phase_cones.append(
                    CompiledCone(
                        A=np.hstack([cone.A, np.zeros((cone.A.shape[0], 1))]),
                        b=cone.b,
                        c=np.concatenate([cone.c, [1.0]]),
                        d=cone.d,
                        name="phase1",
                    )
                )
            terms.extend(
                _cone_blocks(phase_cones, support=support, block=block_index)
            )
            block_terms.append(terms)
        Gc, hc = pieces.coupling
        coupling = None
        if Gc.shape[0]:
            coupling = _LinearBlock(
                np.hstack([Gc, -np.ones((Gc.shape[0], 1))]), hc
            )
        plan = _StructurePlan(
            block_slices=list(reduced.block_slices),
            border=1,
            block_terms=block_terms,
            coupling=coupling,
        )
        return plan.terms, plan

    def _required_relaxation(self, problem: CompiledProblem, x: np.ndarray) -> float:
        """Smallest ``t`` that makes ``x`` strictly feasible for the relaxed problem."""
        needed = -math.inf
        if problem.h.size:
            needed = max(needed, float(np.max(problem._apply_G(x) - problem.h)))
        for hyp in problem.hyperbolic:
            p = float(hyp.p @ x + hyp.p0)
            q = float(hyp.q @ x + hyp.q0)
            norm = math.hypot(2.0 * math.sqrt(hyp.bound), p - q)
            needed = max(needed, norm - (p + q))
        for cone in problem.cones:
            u = cone.A @ x + cone.b
            v = float(cone.c @ x + cone.d)
            needed = max(needed, float(np.linalg.norm(u)) - v)
        if needed == -math.inf:
            needed = -1.0
        return needed

    # -- core barrier loop -----------------------------------------------------------
    def _barrier_minimise(
        self,
        c: np.ndarray,
        terms: List[_BarrierTerm],
        z0: np.ndarray,
        early_stop=None,
        gap_tolerance: Optional[float] = None,
        initial_barrier: Optional[float] = None,
        fixed_barrier: Optional[float] = None,
        plan: Optional[_StructurePlan] = None,
        workspace: Optional[_StructuredWorkspace] = None,
    ) -> _CenteringResult:
        """Minimise ``c·z`` over the strictly feasible region described by ``terms``.

        ``initial_barrier`` starts the rung schedule at a raised barrier
        parameter (warm-started re-solves); callers select it via
        :meth:`_select_warm_rung` so it stays on the cold schedule's geometric
        grid and short of the cold stopping rung — the run then ends on the
        same rung as a cold solve and returns the same central-path point to
        Newton tolerance.  ``fixed_barrier`` instead performs a single
        centering at exactly that barrier parameter and returns, skipping the
        rung schedule and the duality-gap test entirely (the caller owns the
        schedule; see :attr:`BarrierOptions.centering_barrier`).  ``plan``
        switches the Newton solves to the structured (block + Schur
        complement) path; ``workspace`` reuses an already-built hot-loop
        workspace for that plan (one is created here otherwise).
        """
        opts = self.options
        tolerance = opts.tolerance if gap_tolerance is None else gap_tolerance
        m = sum(term.count for term in terms)
        z = np.asarray(z0, dtype=float).copy()

        if any(term.slack(z) <= 0.0 for term in terms):
            # The caller is responsible for strict feasibility of z0.
            return _CenteringResult(
                z, SolverStatus.NUMERICAL_ERROR, 0, 0, opts.initial_barrier
            )

        if plan is not None and workspace is None:
            workspace = _StructuredWorkspace(
                plan, z.size, opts, getattr(self, "_sparse_stats", None)
            )

        t_barrier = opts.initial_barrier
        if initial_barrier is not None:
            t_barrier = max(opts.initial_barrier, float(initial_barrier))
        if fixed_barrier is not None:
            t_barrier = float(fixed_barrier)
        outer = 0
        newton_total = 0
        first_center: Optional[np.ndarray] = None
        converged = True
        status = SolverStatus.MAX_ITERATIONS
        while outer < opts.max_outer_iterations:
            outer += 1
            with obs_span("rung") as rung_span:
                z, newton, converged = self._newton_minimise(
                    c, terms, z, t_barrier, early_stop, workspace
                )
                rung_span.set(barrier=float(t_barrier), newton_iterations=int(newton))
            newton_total += newton
            if outer == 1 and t_barrier == opts.initial_barrier:
                first_center = z.copy()
            if fixed_barrier is not None:
                status = (
                    SolverStatus.OPTIMAL if converged
                    else SolverStatus.MAX_ITERATIONS
                )
                break
            if early_stop is not None and early_stop(z):
                status = SolverStatus.OPTIMAL
                break
            # The sub-optimality of the central-path point is bounded by
            # m / t_barrier; the target is relative to the objective scale.
            gap_target = tolerance * max(1.0, abs(float(c @ z)))
            if m / t_barrier < gap_target:
                status = SolverStatus.OPTIMAL
                break
            t_barrier *= opts.barrier_increase
        return _CenteringResult(
            z, status, outer, newton_total, t_barrier, first_center, converged
        )

    def _select_warm_rung(
        self,
        c: np.ndarray,
        terms: List[_BarrierTerm],
        z: np.ndarray,
        requested: float,
        m: int,
        tolerance: float,
        workspace: Optional[_StructuredWorkspace] = None,
    ) -> float:
        """Pick the starting barrier parameter for a warm-started phase II.

        Starting from ``requested`` (kept on the geometric ``initial_barrier ·
        barrier_increaseᵏ`` grid by the caller), the rung is lowered until

        * it does not lie beyond the rung a cold solve would stop at (so the
          final central-path point matches a cold solve), and
        * the Newton decrement of the centering problem at ``z`` is small
          enough that centering converges in a few steps — a warm point far
          from the new optimum fails this at every rung and falls back to a
          plain cold start at ``initial_barrier``.

        The objective is linear, so the barrier Hessian at ``z`` does not
        depend on the rung.  With a ``workspace`` each candidate costs one
        structured (block + Schur) solve, never materialising the dense
        Hessian; otherwise it is assembled once and each candidate costs a
        single dense solve.
        """
        opts = self.options
        t_barrier = max(opts.initial_barrier, requested)
        gap_start = tolerance * max(1.0, abs(float(c @ z)))
        while (
            t_barrier > opts.initial_barrier
            and m / (t_barrier / opts.barrier_increase) < gap_start
        ):
            t_barrier /= opts.barrier_increase

        if t_barrier <= opts.initial_barrier:
            return opts.initial_barrier
        if workspace is not None:
            while t_barrier > opts.initial_barrier:
                try:
                    grad, direction = workspace.direction(z, t_barrier * c)
                except np.linalg.LinAlgError:
                    break
                if float(-grad @ direction) <= opts.warm_rung_decrement:
                    return t_barrier
                t_barrier /= opts.barrier_increase
            return opts.initial_barrier
        k = z.size
        grad_barrier, hess = _accumulate_dense(terms, z)
        hess += opts.regularization * (1.0 + np.trace(hess) / max(k, 1)) * np.eye(k)
        while t_barrier > opts.initial_barrier:
            grad = t_barrier * c + grad_barrier
            try:
                direction = -np.linalg.solve(hess, grad)
            except np.linalg.LinAlgError:
                break
            # A small decrement keeps the first centering within a few damped
            # Newton steps; a rung that still fails to center trips the
            # caller's convergence guard and falls back to a cold run.
            if float(-grad @ direction) <= opts.warm_rung_decrement:
                return t_barrier
            t_barrier /= opts.barrier_increase
        return opts.initial_barrier

    def _newton_minimise(
        self,
        c: np.ndarray,
        terms: List[_BarrierTerm],
        z: np.ndarray,
        t_barrier: float,
        early_stop=None,
        workspace: Optional[_StructuredWorkspace] = None,
    ) -> Tuple[np.ndarray, int, bool]:
        """Damped Newton minimisation of ``t_barrier·c·z + Σ −log(slack_i)``.

        Uses the structured (batched block factorisations + Schur complement,
        see :class:`_StructuredWorkspace`) solve when ``workspace`` is given,
        falling back to the dense assembly when a block factorisation fails.
        The backtracking line search evaluates each trial point's
        slacks exactly once (:meth:`_barrier_merit` folds the
        strict-feasibility check and the barrier value into one pass — the
        structured path batches this further through the workspace's CSR
        merit bundle — and the
        accepted value is carried into the next iteration), and compares
        merit *differences* rather than absolute merits: the linear part of
        the merit is ``t_barrier·cᵀz`` — at the final barrier rungs its
        magnitude dwarfs the per-step improvement, so the absolute comparison
        drowns in floating-point cancellation and the centering stalls short
        of its decrement target.  The difference form ``t·step·(cᵀd) + Δφ``
        is cancellation-free.

        Returns the final point, the number of Newton iterations spent, and
        whether the run converged (met its decrement target or stalled in the
        line search) rather than exhausting the iteration budget.
        """
        opts = self.options
        k = z.size
        merit = (
            self._barrier_merit if workspace is None
            else lambda _terms, point: workspace.merit(point)
        )
        current_phi: Optional[float] = None
        for iteration in range(opts.max_newton_iterations):
            grad: Optional[np.ndarray] = None
            direction: Optional[np.ndarray] = None
            if workspace is not None:
                try:
                    # Chaos site: an armed ``newton.linalg`` fault raises the
                    # same LinAlgError a failed block factorisation would, so
                    # the dense-fallback path below is exercisable on demand.
                    _maybe_fail("newton.linalg")
                    grad, direction = workspace.direction(z, t_barrier * c)
                except np.linalg.LinAlgError:
                    self._structured_fallbacks = (
                        getattr(self, "_structured_fallbacks", 0) + 1
                    )
                    direction = None
            if direction is None:
                grad_barrier, hess = _accumulate_dense(terms, z)
                grad = t_barrier * c + grad_barrier
                hess += opts.regularization * (1.0 + np.trace(hess) / max(k, 1)) * np.eye(k)
                try:
                    direction = -np.linalg.solve(hess, grad)
                except np.linalg.LinAlgError:
                    direction = -np.linalg.lstsq(hess, grad, rcond=None)[0]

            decrement = float(-grad @ direction)
            if decrement / 2.0 <= opts.newton_tolerance * max(1.0, t_barrier):
                return z, iteration, True

            # Backtracking line search maintaining strict feasibility; an
            # infeasible trial point has barrier value +inf and is rejected
            # by the sufficient-decrease test without a second slack
            # evaluation.
            if current_phi is None:
                current_phi = merit(terms, z)
            linear_slope = t_barrier * float(c @ direction)
            step = 1.0
            while step > 1e-14:
                candidate = z + step * direction
                candidate_phi = merit(terms, candidate)
                delta = step * linear_slope + (candidate_phi - current_phi)
                if delta <= -opts.line_search_alpha * step * decrement:
                    break
                step *= opts.line_search_beta
            else:
                return z, iteration + 1, True
            z = candidate
            current_phi = candidate_phi
            if early_stop is not None and early_stop(z):
                return z, iteration + 1, True
        return z, opts.max_newton_iterations, False

    @staticmethod
    def _barrier_merit(terms: List[_BarrierTerm], z: np.ndarray) -> float:
        """Barrier value ``φ(z)``; ``+inf`` when any constraint slack is ≤ 0.

        One slack evaluation per term serves both the feasibility check and
        the barrier value (:meth:`_BarrierTerm.slack_and_barrier`).  The
        linear merit part is handled by the caller in difference form, so
        only the barrier sum is evaluated here.
        """
        total = 0.0
        for term in terms:
            slack, value = term.slack_and_barrier(z)
            if slack <= 0.0:
                return math.inf
            total += value
        return total


def solve_with_barrier(
    problem: CompiledProblem,
    initial_point: Optional[np.ndarray] = None,
    options: Optional[BarrierOptions] = None,
    interior_point: Optional[np.ndarray] = None,
) -> Solution:
    """Convenience wrapper used by the backend dispatcher."""
    solver = BarrierSolver(options)
    return solver.solve(
        problem, initial_point=initial_point, interior_point=interior_point
    )
