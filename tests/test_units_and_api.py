"""Tests for the unit helpers, the exception hierarchy and the public API surface."""

from __future__ import annotations

import pytest

import repro
from repro import _units
from repro.exceptions import (
    AllocationError,
    AnalysisError,
    BindingError,
    FormulationError,
    GraphStructureError,
    InfeasibleProblemError,
    ModelError,
    NumericalError,
    ReproError,
    SimulationError,
    SolverError,
    UnboundedProblemError,
)


class TestUnits:
    def test_mcycles_round_trip(self):
        assert _units.mcycles(40.0) == pytest.approx(40_000_000.0)
        assert _units.to_mcycles(_units.mcycles(12.5)) == pytest.approx(12.5)

    def test_kcycles(self):
        assert _units.kcycles(3.0) == pytest.approx(3000.0)

    def test_format_cycles_picks_sensible_units(self):
        assert _units.format_cycles(40_000_000.0) == "40.0 Mcycles"
        assert _units.format_cycles(1500.0) == "1.5 kcycles"
        assert _units.format_cycles(12.0) == "12.0 cycles"


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            ModelError,
            GraphStructureError,
            BindingError,
            SolverError,
            FormulationError,
            InfeasibleProblemError,
            UnboundedProblemError,
            NumericalError,
            AnalysisError,
            SimulationError,
            AllocationError,
        ],
    )
    def test_all_errors_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)

    def test_model_errors_group(self):
        assert issubclass(GraphStructureError, ModelError)
        assert issubclass(BindingError, ModelError)

    def test_solver_errors_group(self):
        assert issubclass(InfeasibleProblemError, SolverError)
        assert issubclass(UnboundedProblemError, SolverError)
        assert issubclass(NumericalError, SolverError)


class TestPublicApi:
    def test_version_is_exposed(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_from_module_docstring(self):
        """The README / module docstring quickstart must keep working."""
        from repro import ConfigurationBuilder, allocate

        config = (
            ConfigurationBuilder(name="demo")
            .processor("p1", replenishment_interval=40.0)
            .processor("p2", replenishment_interval=40.0)
            .memory("m1")
            .task_graph("job", period=10.0)
            .task("producer", wcet=1.0, processor="p1")
            .task("consumer", wcet=1.0, processor="p2")
            .buffer("stream", source="producer", target="consumer", memory="m1")
            .build()
        )
        mapping = allocate(config)
        assert mapping.budget("producer") >= 4.0
        assert mapping.capacity("stream") >= 1

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.baselines
        import repro.core
        import repro.dataflow
        import repro.experiments
        import repro.scheduling
        import repro.solver
        import repro.taskgraph

        assert repro.core.JointAllocator is repro.JointAllocator
