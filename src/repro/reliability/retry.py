"""Retry policies, a circuit breaker and graceful-interrupt helpers.

The degradation ladder every solver-adjacent failure path follows is
*bounded retry → fallback → structured error*:

* :class:`RetryPolicy` bounds the retries (attempt count plus an optional
  geometric backoff) and is deliberately dumb — *what* is retryable is the
  caller's decision, because infeasibility is a definite answer that must
  never be retried while a numerical blow-up or a dead worker may be
  transient (and under fault injection, provably is).
* :class:`CircuitBreaker` stops re-trying a backend that keeps failing: after
  ``failure_threshold`` consecutive failures of one key the circuit opens
  and :meth:`CircuitBreaker.allow` answers ``False`` until ``reset_after``
  seconds of quiet, so a campaign with a systematically broken backend pays
  the failure cost once per window instead of once per item.
* :func:`graceful_interrupts` converts ``SIGTERM`` into
  :class:`KeyboardInterrupt` for the duration of a block, so the executor's
  and the decomposed team's ``finally``-based worker teardown runs on an
  external termination request exactly as it does on Ctrl-C — no orphaned
  pool workers, caches and JSONL logs left in their (truncation-tolerant)
  valid states.
"""

from __future__ import annotations

import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple, Type

__all__ = ["RetryPolicy", "CircuitBreaker", "graceful_interrupts"]


@dataclass
class RetryPolicy:
    """Bounded retry with optional geometric backoff.

    ``attempts`` counts *total* tries: the default of 2 means one retry
    after the first failure.  ``backoff`` seconds are slept before each
    retry, multiplied by ``backoff_factor`` per further retry; the default
    of zero keeps tests and admission paths instant.
    """

    attempts: int = 2
    backoff: float = 0.0
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")

    def delays(self) -> Iterator[float]:
        """The sleep before each retry (``attempts - 1`` values)."""
        delay = self.backoff
        for _ in range(self.attempts - 1):
            yield delay
            delay *= self.backoff_factor

    def run(
        self,
        call: Callable[[], object],
        retryable: Tuple[Type[BaseException], ...] = (Exception,),
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ) -> object:
        """Call ``call`` up to ``attempts`` times; re-raise the last failure.

        Only ``retryable`` exceptions trigger a retry — anything else
        propagates immediately (a definite verdict such as infeasibility
        must never be re-asked).  ``on_retry(attempt, error)`` fires before
        each retry, which is where callers count ``reliability.retries``.
        """
        last: Optional[BaseException] = None
        for attempt, delay in enumerate(list(self.delays()) + [None]):
            try:
                return call()
            except retryable as error:
                last = error
                if delay is None:
                    break
                if on_retry is not None:
                    on_retry(attempt + 1, error)
                if delay > 0.0:
                    time.sleep(delay)
        assert last is not None
        raise last


class CircuitBreaker:
    """Per-key consecutive-failure circuit with a monotonic-clock reset.

    Thread-safe; one instance can be shared by every item of a campaign.
    A key's circuit opens after ``failure_threshold`` consecutive
    :meth:`record_failure` calls and closes again ``reset_after`` seconds
    after the last failure (half-open: the next caller gets one probe).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_after: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self._clock = clock
        self._lock = threading.Lock()
        #: key -> (consecutive failures, last failure instant)
        self._state: Dict[str, Tuple[int, float]] = {}

    def allow(self, key: str) -> bool:
        """Whether a call under ``key`` should be attempted right now.

        A try-acquire, not a pure query: in the half-open window the one
        probe is *consumed* by the caller who asks (its
        :meth:`record_success`/:meth:`record_failure` outcome then decides
        the circuit's fate).  Status checks that will not be followed by a
        real call must use :meth:`is_open` instead.
        """
        with self._lock:
            state = self._state.get(key)
            if state is None:
                return True
            failures, last_failure = state
            if failures < self.failure_threshold:
                return True
            if self._clock() - last_failure >= self.reset_after:
                # Half-open: allow one probe; its outcome decides the state.
                self._state[key] = (self.failure_threshold - 1, last_failure)
                return True
            return False

    def record_success(self, key: str) -> None:
        with self._lock:
            self._state.pop(key, None)

    def record_failure(self, key: str) -> None:
        with self._lock:
            failures, _ = self._state.get(key, (0, 0.0))
            self._state[key] = (failures + 1, self._clock())

    def is_open(self, key: str) -> bool:
        """Whether the circuit for ``key`` is currently open (calls blocked).

        A pure query: unlike :meth:`allow` it never consumes the half-open
        probe, so any number of status checks leave the breaker's state
        untouched.  In the half-open window it reports the circuit as not
        open (a call would be allowed).
        """
        with self._lock:
            state = self._state.get(key)
            if state is None:
                return False
            failures, last_failure = state
            if failures < self.failure_threshold:
                return False
            return self._clock() - last_failure < self.reset_after


@contextmanager
def graceful_interrupts() -> Iterator[None]:
    """Convert ``SIGTERM`` to :class:`KeyboardInterrupt` inside the block.

    An external ``kill`` then unwinds the Python stack instead of dropping
    the process: pool teardown, cache writes and JSONL flushes in
    ``finally`` blocks all run.  A no-op outside the main thread (signal
    handlers can only be installed there) and on platforms without
    ``SIGTERM``.
    """
    if threading.current_thread() is not threading.main_thread() or not hasattr(
        signal, "SIGTERM"
    ):
        yield
        return

    def _raise_interrupt(signum, frame):  # noqa: ARG001 - signal handler shape
        raise KeyboardInterrupt("terminated by SIGTERM")

    previous = signal.signal(signal.SIGTERM, _raise_interrupt)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)
