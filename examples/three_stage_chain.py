#!/usr/bin/env python3
"""Experiment 2 of the paper: topology dependence of the trade-off (Figure 3).

The three-stage chain ``wa → wb → wc`` runs on three processors; both buffer
capacities are bounded by a common value that is swept from 1 to 10
containers while the sum of budgets is minimised.  Because the budget of the
middle task interacts with *two* buffers, the optimiser reduces the budgets of
the outer tasks first — the per-task budget curves separate, which is the
topology-dependence result of the paper.

The example also shows per-buffer marginal analysis: starting from a small
symmetric buffer allocation, which buffer is most worth enlarging next?

Run with:  python examples/three_stage_chain.py
"""

from __future__ import annotations

from repro.analysis import marginal_capacity_values, render_table
from repro.core import ObjectiveWeights
from repro.experiments.figure3 import build_configuration, run_figure3


def main() -> None:
    result = run_figure3()

    print("Figure 3 — per-task budgets vs. common maximum buffer capacity (chain T2)")
    print()
    print(render_table(result.rows()))
    print()
    print(
        "The middle task wb keeps the larger budget until both buffers are big "
        "enough; the outer tasks wa and wc are relieved first."
    )
    print()

    # Marginal analysis around a 2-container allocation: one extra container
    # on either buffer saves the same amount of budget because the chain is
    # symmetric.
    configuration = build_configuration()
    values = marginal_capacity_values(
        configuration, {"bab": 2, "bbc": 2}, weights=ObjectiveWeights.prefer_budgets()
    )
    print("Marginal value of one extra container (starting from 2+2 containers):")
    print(
        render_table(
            [
                {
                    "buffer": value.buffer_name,
                    "total budget before (Mcycles)": round(value.baseline_total_budget, 3),
                    "total budget after (Mcycles)": round(value.enlarged_total_budget, 3),
                    "saving (Mcycles)": round(value.saving, 3),
                }
                for value in values
            ]
        )
    )


if __name__ == "__main__":
    main()
