"""Tests of the durable admission journal and session snapshots.

The WAL contract under test:

* every record is one checksummed line; the reader tolerates exactly one
  crash artefact — an unparseable *final* line (dropped, flagged) — and
  rejects everything else (checksum mismatch, sequence gap, garbage mid-file)
  as corruption;
* a journal resumes only onto the platform it was recorded against;
* a snapshot restores only against its own journal (platform fingerprint
  match, snapshot not newer than the journal tail).
"""

from __future__ import annotations

import json

import pytest

from repro.core import AllocatorOptions, JointAllocator, random_trace, replay_trace
from repro.exceptions import JournalError, SnapshotError
from repro.reliability import (
    AdmissionJournal,
    SessionSnapshot,
    default_snapshot_path,
    load_snapshot,
    platform_fingerprint,
    read_journal,
    replay_trace_durably,
    restore_controller,
    save_snapshot,
    snapshot_controller,
)


def options() -> AllocatorOptions:
    return AllocatorOptions(verify=False, run_simulation=False)


def allocator() -> JointAllocator:
    return JointAllocator(options=options())


@pytest.fixture(scope="module")
def trace():
    return random_trace(event_count=6, seed=7, task_count=3, processor_count=3)


@pytest.fixture(scope="module")
def baseline(trace):
    return replay_trace(trace, allocator=allocator())


def durable_run(trace, tmp_path, snapshot_every=0):
    journal_path = tmp_path / "run.journal"
    result = replay_trace_durably(
        trace, journal_path, snapshot_every=snapshot_every, allocator=allocator()
    )
    return journal_path, result


class TestJournalReading:
    def test_missing_and_empty_files_read_as_empty_journals(self, tmp_path):
        missing = read_journal(tmp_path / "nope.journal")
        assert missing.entries == []
        assert missing.last_seq == 0
        assert not missing.truncated
        empty = tmp_path / "empty.journal"
        empty.write_text("")
        assert read_journal(empty).entries == []

    def test_roundtrip_records_every_committed_event(self, trace, baseline, tmp_path):
        journal_path, result = durable_run(trace, tmp_path)
        contents = read_journal(journal_path)
        assert len(contents.entries) == len(trace.events)
        assert contents.fingerprint == platform_fingerprint(trace.platform)
        assert not contents.truncated
        # The recorded outcomes are the replay's outcomes, bit for bit.
        for entry, record in zip(contents.entries, baseline.records):
            stored = entry.record()
            assert stored.status == record.status
            assert stored.stage == record.stage
            if record.objective_value is None:
                assert stored.objective_value is None
            else:
                assert stored.objective_value == pytest.approx(
                    record.objective_value, abs=1e-6
                )

    def test_truncated_final_record_is_dropped_not_fatal(self, trace, tmp_path):
        journal_path, _ = durable_run(trace, tmp_path)
        text = journal_path.read_text()
        # Tear the final line mid-record, as a crash mid-append would.
        journal_path.write_text(text[: len(text) - 25])
        contents = read_journal(journal_path)
        assert contents.truncated
        assert len(contents.entries) == len(trace.events) - 1
        assert contents.last_seq == len(trace.events) - 1

    def test_checksum_corrupted_middle_record_is_rejected(self, trace, tmp_path):
        journal_path, _ = durable_run(trace, tmp_path)
        lines = journal_path.read_text().splitlines()
        record = json.loads(lines[2])
        record["outcome"]["status"] = "admitted"
        record["outcome"]["objective_value"] = 0.0
        lines[2] = json.dumps(record, sort_keys=True)  # stale crc
        journal_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="checksum mismatch"):
            read_journal(journal_path)

    def test_garbage_middle_line_is_rejected(self, trace, tmp_path):
        journal_path, _ = durable_run(trace, tmp_path)
        lines = journal_path.read_text().splitlines()
        lines[1] = "{this is not json"
        journal_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="unparseable record"):
            read_journal(journal_path)

    def test_sequence_gap_is_rejected(self, trace, tmp_path):
        journal_path, _ = durable_run(trace, tmp_path)
        lines = journal_path.read_text().splitlines()
        del lines[2]  # drop event seq 2: seq 1 is then followed by seq 3
        journal_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="sequence gap"):
            read_journal(journal_path)

    def test_reopening_against_a_different_platform_is_rejected(
        self, trace, tmp_path
    ):
        journal_path, _ = durable_run(trace, tmp_path)
        other = random_trace(event_count=2, seed=11, task_count=2, processor_count=2)
        with pytest.raises(JournalError, match="different.*platform"):
            AdmissionJournal(journal_path).open(other.platform)

    def test_journal_alone_rebuilds_its_platform(self, trace, tmp_path):
        journal_path, _ = durable_run(trace, tmp_path)
        contents = read_journal(journal_path)
        rebuilt = contents.platform()
        assert platform_fingerprint(rebuilt) == contents.fingerprint


class TestTornTailRepair:
    """Resuming onto a torn final line must repair the file, not append to it."""

    def test_open_truncates_a_torn_tail_before_appending(self, trace, tmp_path):
        journal_path, _ = durable_run(trace, tmp_path)
        text = journal_path.read_text()
        journal_path.write_text(text[: len(text) - 25])  # tear the final line
        torn = read_journal(journal_path)
        assert torn.truncated
        with AdmissionJournal(journal_path).open(trace.platform) as journal:
            assert journal.seq == torn.last_seq
        repaired = read_journal(journal_path)
        assert not repaired.truncated
        assert repaired.last_seq == torn.last_seq

    def test_open_newline_terminates_a_tail_missing_its_newline(
        self, trace, tmp_path
    ):
        # The final record survived intact but its newline did not: without a
        # repair the next O_APPEND write would concatenate onto it.
        journal_path, _ = durable_run(trace, tmp_path)
        text = journal_path.read_text()
        journal_path.write_text(text.rstrip("\n"))
        with AdmissionJournal(journal_path).open(trace.platform):
            pass
        contents = read_journal(journal_path)
        assert not contents.truncated
        assert len(contents.entries) == len(trace.events)

    def test_open_recovers_a_journal_torn_inside_its_header(self, trace, tmp_path):
        journal_path = tmp_path / "torn.journal"
        journal_path.write_text('{"half of an open record')
        with AdmissionJournal(journal_path).open(trace.platform) as journal:
            assert journal.seq == 0
        contents = read_journal(journal_path)
        assert contents.fingerprint == platform_fingerprint(trace.platform)
        assert contents.entries == []

    def test_resume_after_a_torn_append_resolves_the_lost_event(
        self, trace, baseline, tmp_path
    ):
        """The review scenario: kill mid-append, resume, journal stays valid."""
        journal_path, _ = durable_run(trace, tmp_path)
        text = journal_path.read_text()
        journal_path.write_text(text[: len(text) - 25])
        result = replay_trace_durably(
            trace, journal_path, allocator=allocator(), resume=True
        )
        assert [r.status for r in result.records] == [
            r.status for r in baseline.records
        ]
        # The resumed append landed on a fresh line: the journal re-reads
        # cleanly and holds every event exactly once.
        contents = read_journal(journal_path)
        assert not contents.truncated
        assert len(contents.entries) == len(trace.events)


class TestSnapshots:
    def test_snapshot_roundtrips_through_disk(self, trace, tmp_path):
        journal_path, _ = durable_run(trace, tmp_path, snapshot_every=2)
        snapshot = load_snapshot(default_snapshot_path(journal_path))
        assert snapshot.journal_seq > 0
        assert snapshot.fingerprint == platform_fingerprint(trace.platform)
        again = tmp_path / "copy.snapshot"
        save_snapshot(snapshot, again)
        assert load_snapshot(again).to_dict() == snapshot.to_dict()

    def test_unreadable_snapshot_is_a_snapshot_error(self, tmp_path):
        bad = tmp_path / "bad.snapshot"
        bad.write_text("{torn")
        with pytest.raises(SnapshotError, match="cannot read snapshot"):
            load_snapshot(bad)

    def test_newer_format_version_is_rejected(self):
        with pytest.raises(SnapshotError, match="newer than supported"):
            SessionSnapshot.from_dict(
                {"format_version": 999, "journal_seq": 0, "fingerprint": "x"}
            )

    def test_snapshot_newer_than_journal_tail_is_rejected(self, trace, tmp_path):
        journal_path, _ = durable_run(trace, tmp_path, snapshot_every=2)
        contents = read_journal(journal_path)
        snapshot = load_snapshot(default_snapshot_path(journal_path))
        snapshot.journal_seq = contents.last_seq + 5
        with pytest.raises(SnapshotError, match="newer than the journal tail"):
            restore_controller(contents, snapshot, allocator=allocator())

    def test_restore_onto_changed_platform_is_rejected(self, trace, tmp_path):
        journal_path, _ = durable_run(trace, tmp_path, snapshot_every=2)
        snapshot = load_snapshot(default_snapshot_path(journal_path))
        other = random_trace(event_count=3, seed=11, task_count=2, processor_count=2)
        other_journal = tmp_path / "other.journal"
        replay_trace_durably(other, other_journal, allocator=allocator())
        with pytest.raises(SnapshotError, match="different platform"):
            restore_controller(
                read_journal(other_journal), snapshot, allocator=allocator()
            )

    def test_replay_divergence_is_detected(self, trace, tmp_path):
        journal_path, _ = durable_run(trace, tmp_path)
        lines = journal_path.read_text().splitlines()
        # Forge the final outcome (with a valid checksum) so the re-solved
        # status cannot match the recorded one.
        import zlib

        record = json.loads(lines[-1])
        record["outcome"]["status"] = (
            "rejected" if record["outcome"]["status"] != "rejected" else "admitted"
        )
        del record["crc"]
        body = json.dumps(record, sort_keys=True, separators=(",", ":"))
        record["crc"] = zlib.crc32(body.encode("utf-8"))
        lines[-1] = json.dumps(record, sort_keys=True)
        journal_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="replay diverged"):
            restore_controller(read_journal(journal_path), allocator=allocator())

    def test_snapshot_of_an_empty_controller(self, trace, tmp_path):
        from repro.core import AdmissionController

        controller = AdmissionController(trace.platform, allocator=allocator())
        snapshot = snapshot_controller(controller, journal_seq=0)
        assert snapshot.workload_data is None
        path = tmp_path / "empty.snapshot"
        save_snapshot(snapshot, path)
        assert load_snapshot(path).workload_data is None


class TestDurableReplay:
    def test_durable_replay_matches_plain_replay(self, trace, baseline, tmp_path):
        _, result = durable_run(trace, tmp_path, snapshot_every=2)
        assert [r.status for r in result.records] == [
            r.status for r in baseline.records
        ]
        for ours, theirs in zip(result.records, baseline.records):
            if theirs.objective_value is not None:
                assert ours.objective_value == pytest.approx(
                    theirs.objective_value, abs=1e-6
                )

    def test_resume_of_a_complete_run_recomputes_nothing(
        self, trace, baseline, tmp_path
    ):
        journal_path, _ = durable_run(trace, tmp_path, snapshot_every=2)
        result = replay_trace_durably(
            trace,
            journal_path,
            snapshot_every=2,
            allocator=allocator(),
            resume=True,
        )
        assert [r.status for r in result.records] == [
            r.status for r in baseline.records
        ]

    def test_resume_with_the_wrong_trace_platform_is_rejected(
        self, trace, tmp_path
    ):
        journal_path, _ = durable_run(trace, tmp_path)
        other = random_trace(event_count=3, seed=11, task_count=2, processor_count=2)
        with pytest.raises(JournalError, match="different.*platform"):
            replay_trace_durably(
                other, journal_path, allocator=allocator(), resume=True
            )

    def test_fsync_per_append_changes_nothing_but_durability(
        self, trace, baseline, tmp_path
    ):
        result = replay_trace_durably(
            trace, tmp_path / "sync.journal", allocator=allocator(), fsync=True
        )
        assert [r.status for r in result.records] == [
            r.status for r in baseline.records
        ]

    def test_rerun_without_resume_onto_an_existing_journal_is_refused(
        self, trace, tmp_path
    ):
        """resume=False must never append a second copy of the trace."""
        journal_path, _ = durable_run(trace, tmp_path)
        before = journal_path.read_text()
        with pytest.raises(JournalError, match="already holds"):
            replay_trace_durably(trace, journal_path, allocator=allocator())
        assert journal_path.read_text() == before
