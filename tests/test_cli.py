"""Tests of the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXIT_INFEASIBLE, EXIT_OK, EXIT_USAGE, main
from repro.taskgraph import serialization
from repro.taskgraph.generators import producer_consumer_configuration


@pytest.fixture
def config_path(tmp_path):
    path = tmp_path / "config.json"
    serialization.save_configuration(producer_consumer_configuration(max_capacity=5), path)
    return str(path)


@pytest.fixture
def infeasible_config_path(tmp_path):
    path = tmp_path / "infeasible.json"
    serialization.save_configuration(
        producer_consumer_configuration(period=2.0, max_capacity=1), path
    )
    return str(path)


class TestAllocateCommand:
    def test_prints_mapping(self, config_path, capsys):
        assert main(["allocate", config_path]) == EXIT_OK
        output = capsys.readouterr().out
        assert "wa" in output and "bab" in output

    def test_writes_output_file(self, config_path, tmp_path, capsys):
        out_file = tmp_path / "mapped.json"
        assert main(["allocate", config_path, "--output", str(out_file)]) == EXIT_OK
        payload = json.loads(out_file.read_text())
        assert payload["budgets"]["wa"] == pytest.approx(18.0, abs=1.0)
        assert payload["buffer_capacities"]["bab"] <= 5
        assert payload["configuration"]["name"] == "producer-consumer"

    def test_infeasible_configuration_exit_code(self, infeasible_config_path, capsys):
        assert main(["allocate", infeasible_config_path]) == EXIT_INFEASIBLE
        assert "infeasible" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["allocate", "/nonexistent/config.json"]) == EXIT_USAGE

    def test_backend_and_weights_flags(self, config_path, capsys):
        assert (
            main(
                [
                    "allocate",
                    config_path,
                    "--backend",
                    "barrier",
                    "--weights",
                    "prefer-buffers",
                ]
            )
            == EXIT_OK
        )


class TestValidateCommand:
    def test_valid_configuration(self, config_path, capsys):
        assert main(["validate", config_path]) == EXIT_OK
        assert "feasibility screen" in capsys.readouterr().out

    def test_screen_rejects_overload(self, tmp_path, capsys):
        config = producer_consumer_configuration(memory_capacity=1.5)
        path = tmp_path / "tight.json"
        serialization.save_configuration(config, path)
        assert main(["validate", str(path)]) == EXIT_INFEASIBLE
        assert "violation" in capsys.readouterr().err


class TestSweepCommand:
    def test_range_syntax(self, config_path, capsys):
        assert main(["sweep", config_path, "--capacities", "2:4"]) == EXIT_OK
        output = capsys.readouterr().out
        assert "capacity_limit" in output
        assert output.count("\n") >= 5

    def test_list_syntax(self, config_path, capsys):
        assert main(["sweep", config_path, "--capacities", "3,5"]) == EXIT_OK

    def test_empty_range_is_usage_error(self, config_path):
        assert main(["sweep", config_path, "--capacities", ""]) == EXIT_USAGE

    def test_all_points_infeasible(self, infeasible_config_path):
        assert (
            main(["sweep", infeasible_config_path, "--capacities", "1,1"])
            == EXIT_INFEASIBLE
        )


class TestParser:
    def test_unknown_command_is_usage_error(self):
        assert main(["frobnicate"]) == EXIT_USAGE

    def test_missing_command_is_usage_error(self):
        assert main([]) == EXIT_USAGE
