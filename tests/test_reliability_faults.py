"""Tests of the fault-injection harness and the degradation ladder.

Every seeded chaos scenario must end in a *structured* outcome — an error
verdict, a fallback solution, an evicted cache entry — never an unhandled
exception, and the injected faults must surface as ``reliability.*``
counters in the metrics snapshot.
"""

from __future__ import annotations

import os
import signal
import threading

import pytest

from repro import obs
from repro.core import AdmissionController, AllocatorOptions, JointAllocator
from repro.exceptions import FaultInjected, JournalError, NumericalError
from repro.reliability import (
    CircuitBreaker,
    FaultPlan,
    RetryPolicy,
    armed,
    graceful_interrupts,
    maybe_fail,
    replay_trace_durably,
)
from repro.reliability.faults import FaultSpec, active_plan, install, uninstall
from repro.taskgraph.generators import chain_configuration


def options() -> AllocatorOptions:
    return AllocatorOptions(verify=False, run_simulation=False)


@pytest.fixture(autouse=True)
def disarm():
    yield
    uninstall()


class TestFaultPlan:
    def test_inert_without_a_plan(self):
        assert maybe_fail("anything") is None

    def test_fires_on_the_nth_hit_only(self):
        plan = FaultPlan(seed=3).arm("site", "raise", nth=3)
        with armed(plan):
            maybe_fail("site")
            maybe_fail("site")
            with pytest.raises(FaultInjected):
                maybe_fail("site")
            # times=1: the window has passed.
            maybe_fail("site")
        assert plan.fired("site") == 1

    def test_label_match_filters_hits(self):
        plan = FaultPlan().arm("site", "raise", match="item-7")
        with armed(plan):
            maybe_fail("site", label="item-3")
            with pytest.raises(FaultInjected):
                maybe_fail("site", label="item-7")

    def test_times_fires_a_window_of_hits(self):
        plan = FaultPlan().arm("site", "numerical-error", nth=1, times=2)
        with armed(plan):
            with pytest.raises(NumericalError):
                maybe_fail("site")
            with pytest.raises(NumericalError):
                maybe_fail("site")
            maybe_fail("site")
        assert plan.fired() == 2

    def test_roundtrips_through_dicts(self):
        plan = FaultPlan(seed=42).arm(
            "executor.worker", "exit", nth=2, match="slow", seconds=0.5
        )
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.seed == 42
        assert clone.specs[0].site == "executor.worker"
        assert clone.specs[0].nth == 2
        assert clone.specs[0].match == "slow"

    def test_unknown_action_is_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultSpec(site="s", action="explode")

    def test_armed_restores_the_previous_plan(self):
        outer = FaultPlan(seed=1)
        install(outer)
        with armed(FaultPlan(seed=2)):
            assert active_plan().seed == 2
        assert active_plan() is outer
        with armed(None):
            assert active_plan() is outer

    def test_fired_faults_surface_in_the_metrics_snapshot(self):
        plan = FaultPlan().arm("site", "raise")
        with obs.capture() as captured:
            with armed(plan):
                with pytest.raises(FaultInjected):
                    maybe_fail("site")
        assert captured.metrics["reliability.faults.injected"]["value"] >= 1
        assert captured.metrics["reliability.faults.site"]["value"] >= 1


class TestRetryPolicy:
    def test_retries_then_succeeds(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise NumericalError("transient")
            return "done"

        assert RetryPolicy(attempts=3).run(flaky, retryable=(NumericalError,)) == "done"
        assert calls["n"] == 3

    def test_exhaustion_reraises_the_last_error(self):
        with pytest.raises(NumericalError, match="always"):
            RetryPolicy(attempts=2).run(
                lambda: (_ for _ in ()).throw(NumericalError("always")),
                retryable=(NumericalError,),
            )

    def test_non_retryable_propagates_immediately(self):
        calls = {"n": 0}

        def definite():
            calls["n"] += 1
            raise ValueError("definite answer")

        with pytest.raises(ValueError):
            RetryPolicy(attempts=5).run(definite, retryable=(NumericalError,))
        assert calls["n"] == 1

    def test_on_retry_counts_every_retry(self):
        seen = []
        with pytest.raises(NumericalError):
            RetryPolicy(attempts=3).run(
                lambda: (_ for _ in ()).throw(NumericalError("x")),
                retryable=(NumericalError,),
                on_retry=lambda attempt, error: seen.append(attempt),
            )
        assert seen == [1, 2]

    def test_delays_follow_the_backoff_factor(self):
        policy = RetryPolicy(attempts=4, backoff=0.1, backoff_factor=2.0)
        assert list(policy.delays()) == pytest.approx([0.1, 0.2, 0.4])

    def test_at_least_one_attempt_is_required(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)


class TestCircuitBreaker:
    def test_opens_after_threshold_and_half_opens_after_reset(self):
        now = {"t": 0.0}
        breaker = CircuitBreaker(
            failure_threshold=2, reset_after=10.0, clock=lambda: now["t"]
        )
        assert breaker.allow("barrier")
        breaker.record_failure("barrier")
        assert breaker.allow("barrier")
        breaker.record_failure("barrier")
        assert not breaker.allow("barrier")
        assert breaker.is_open("barrier")
        now["t"] = 11.0
        # Half-open: one probe is allowed; its failure re-opens the circuit.
        assert breaker.allow("barrier")
        breaker.record_failure("barrier")
        assert not breaker.allow("barrier")

    def test_success_closes_the_circuit(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_after=1000.0)
        breaker.record_failure("scipy")
        assert not breaker.allow("scipy")
        breaker.record_success("scipy")
        assert breaker.allow("scipy")

    def test_keys_are_independent(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_after=1000.0)
        breaker.record_failure("barrier")
        assert not breaker.allow("barrier")
        assert breaker.allow("scipy")

    def test_is_open_is_a_pure_query(self):
        """Status checks must not consume the half-open probe."""
        now = {"t": 0.0}
        breaker = CircuitBreaker(
            failure_threshold=2, reset_after=10.0, clock=lambda: now["t"]
        )
        breaker.record_failure("barrier")
        breaker.record_failure("barrier")
        assert breaker.is_open("barrier")
        now["t"] = 11.0
        # Half-open: any number of status checks leave the probe available.
        for _ in range(5):
            assert not breaker.is_open("barrier")
        assert breaker.allow("barrier")
        breaker.record_failure("barrier")
        assert breaker.is_open("barrier")
        assert not breaker.allow("barrier")


class TestGracefulInterrupts:
    def test_sigterm_becomes_keyboard_interrupt(self):
        with pytest.raises(KeyboardInterrupt):
            with graceful_interrupts():
                os.kill(os.getpid(), signal.SIGTERM)
                # The handler fires at the next interpreter checkpoint.
                for _ in range(1000):
                    pass

    def test_previous_handler_is_restored(self):
        previous = signal.getsignal(signal.SIGTERM)
        with graceful_interrupts():
            assert signal.getsignal(signal.SIGTERM) is not previous
        assert signal.getsignal(signal.SIGTERM) is previous

    def test_noop_off_the_main_thread(self):
        outcome = {}

        def worker():
            with graceful_interrupts():
                outcome["ok"] = True

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert outcome["ok"]


class TestChaosScenarios:
    """Seeded end-to-end scenarios: every fault ends in a structured outcome."""

    def _controller(self) -> AdmissionController:
        video = chain_configuration(stages=2)
        controller = AdmissionController(
            video.platform, allocator=JointAllocator(options=options())
        )
        assert controller.admit("video", video).admitted
        return controller

    def test_transient_solver_fault_is_retried_and_admits(self):
        from repro.core.admission import STAGE_ADMITTED

        controller = self._controller()
        plan = FaultPlan(seed=5).arm("admission.solve", "numerical-error", nth=1)
        with obs.capture() as captured, armed(plan):
            decision = controller.admit(
                "audio", chain_configuration(stages=2, period=20.0)
            )
        assert decision.admitted
        assert decision.stage == STAGE_ADMITTED
        assert plan.fired("admission.solve") == 1
        assert captured.metrics["reliability.retries"]["value"] >= 1

    def test_persistent_solver_fault_ends_in_an_error_verdict(self):
        from repro.core.admission import STAGE_ERROR

        controller = self._controller()
        # Fire on every attempt: incremental, retry, and from-scratch fallback.
        plan = FaultPlan(seed=6).arm(
            "admission.solve", "numerical-error", nth=1, times=99
        )
        with obs.capture() as captured, armed(plan):
            decision = controller.admit(
                "audio", chain_configuration(stages=2, period=20.0)
            )
        assert not decision.admitted
        assert decision.stage == STAGE_ERROR
        assert controller.running == ["video"]
        assert captured.metrics["reliability.fallbacks"]["value"] >= 1
        assert captured.metrics["reliability.faults.injected"]["value"] >= 2
        # The controller survives the chaos window and keeps admitting.
        assert controller.admit(
            "audio", chain_configuration(stages=2, period=20.0)
        ).admitted

    def test_linalg_fault_degrades_to_the_dense_newton_step(self):
        """An injected factorisation failure inside the structured Newton
        iteration is absorbed by the existing dense fallback: the solve still
        lands on the optimum, with the fallback iteration counted."""
        video = chain_configuration(stages=2)
        baseline = JointAllocator(options=options()).allocate(video)
        plan = FaultPlan(seed=7).arm("newton.linalg", "linalg-error", nth=1)
        with armed(plan):
            perturbed = JointAllocator(options=options()).allocate(video)
        assert perturbed.objective_value == pytest.approx(
            baseline.objective_value, abs=1e-6
        )

    def test_cache_corruption_costs_one_resolve_not_a_crash(self, tmp_path):
        from repro.batch.cache import ResultCache

        cache = ResultCache(tmp_path / "cache")
        plan = FaultPlan(seed=8).arm("cache.corrupt", "corrupt", nth=1)
        with armed(plan):
            cache.put("a" * 64, {"status": "ok"})
        assert plan.fired("cache.corrupt") == 1
        # The corrupted entry reads as a miss and is evicted.
        assert cache.get("a" * 64) is None
        assert cache.stats()["evictions"] == 1
        cache.put("a" * 64, {"status": "ok"})
        assert cache.get("a" * 64) == {"status": "ok"}

    def test_journal_write_failure_is_a_journal_error(self, tmp_path):
        from repro.core import random_trace

        trace = random_trace(event_count=3, seed=7, task_count=3, processor_count=3)
        plan = FaultPlan(seed=9).arm("journal.write", "oserror", nth=2)
        with armed(plan):
            with pytest.raises(JournalError, match="journal append"):
                replay_trace_durably(
                    trace,
                    tmp_path / "run.journal",
                    allocator=JointAllocator(options=options()),
                )
