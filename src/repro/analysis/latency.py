"""End-to-end latency analysis of mapped task graphs.

Besides throughput, system integrators care about the end-to-end latency of a
job: how long after a source task starts does the sink task finish one
iteration?  For a mapped configuration two conservative estimates are
provided:

* the **schedule latency**: the makespan of the first iteration of the
  as-soon-as-possible periodic admissible schedule at the required period
  (valid for the steady state of any budget-scheduled implementation, by the
  monotonicity argument of the paper), and
* the **self-timed latency**: the finish time of the first firing of the last
  actor in the self-timed (worst-case firing duration) execution, which is
  the classical start-up latency bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.exceptions import AnalysisError
from repro.dataflow.construction import (
    build_srdf_specification,
    finish_actor_name,
    instantiate_srdf,
)
from repro.dataflow.mcr import longest_path_potentials
from repro.dataflow.simulation import simulate
from repro.taskgraph.configuration import MappedConfiguration


@dataclass(frozen=True)
class LatencyReport:
    """Latency figures for one task graph under a mapping."""

    graph_name: str
    required_period: float
    schedule_latency: float
    self_timed_latency: float

    @property
    def periods_of_latency(self) -> float:
        """Schedule latency expressed in multiples of the throughput period."""
        return self.schedule_latency / self.required_period


def analyse_latency(mapped: MappedConfiguration) -> Dict[str, LatencyReport]:
    """Compute a :class:`LatencyReport` per task graph of a mapped configuration.

    Raises
    ------
    AnalysisError
        If the mapping does not admit a periodic schedule at the required
        period (latency is undefined for an infeasible mapping).
    """
    configuration = mapped.configuration
    reports: Dict[str, LatencyReport] = {}
    for graph in configuration.task_graphs:
        specification = build_srdf_specification(graph)
        srdf = instantiate_srdf(
            specification,
            graph,
            configuration.platform,
            mapped.budgets,
            mapped.buffer_capacities,
        )
        potentials = longest_path_potentials(srdf, graph.period)
        if potentials is None:
            raise AnalysisError(
                f"graph {graph.name!r}: no periodic admissible schedule with period "
                f"{graph.period}; compute a valid mapping before analysing latency"
            )
        # Completion of one iteration in the ASAP periodic schedule: the last
        # finish among the v2 actors (v2 models the budget-limited execution).
        schedule_latency = 0.0
        trace = simulate(srdf, iterations=1)
        self_timed_latency = 0.0
        for task in graph.tasks:
            actor = finish_actor_name(task.name)
            duration = srdf.firing_duration(actor)
            schedule_latency = max(schedule_latency, potentials[actor] + duration)
            self_timed_latency = max(
                self_timed_latency, trace.start_time(actor, 1) + duration
            )
        reports[graph.name] = LatencyReport(
            graph_name=graph.name,
            required_period=graph.period,
            schedule_latency=schedule_latency,
            self_timed_latency=self_timed_latency,
        )
    return reports


def latency_lower_bound(mapped: MappedConfiguration, graph_name: str) -> float:
    """A simple lower bound: the longest chain of v2 firing durations.

    Any schedule (periodic or self-timed) must execute the tasks of the
    longest dependency chain in sequence, each taking at least its
    budget-limited firing duration.
    """
    configuration = mapped.configuration
    graph = configuration.task_graph(graph_name)
    durations = {}
    for task in graph.tasks:
        processor = configuration.platform.processor(task.processor)
        durations[task.name] = (
            processor.replenishment_interval * task.wcet / mapped.budget(task.name)
        )

    # Longest path over the acyclic part of the task graph (buffers with
    # initial tokens do not impose a first-iteration ordering).
    import networkx as nx

    dag = nx.DiGraph()
    dag.add_nodes_from(graph.task_names)
    for buffer in graph.buffers:
        if buffer.initial_tokens == 0 and buffer.source != buffer.target:
            dag.add_edge(buffer.source, buffer.target)
    if not nx.is_directed_acyclic_graph(dag):
        raise AnalysisError(
            f"graph {graph_name!r} has a token-free cycle; it deadlocks"
        )
    # Standard longest-path dynamic programme over the topological order.
    best = 0.0
    chain: Dict[str, float] = {}
    for node in nx.topological_sort(dag):
        upstream = max((chain[p] for p in dag.predecessors(node)), default=0.0)
        chain[node] = upstream + durations[node]
        best = max(best, chain[node])
    return best
