"""Tests of campaign-level aggregation."""

from __future__ import annotations

import pytest

from repro.batch.aggregate import (
    CampaignSummary,
    aggregate_results,
    per_item_rows,
    percentile,
)
from repro.batch.executor import (
    STATUS_ERROR,
    STATUS_INFEASIBLE,
    STATUS_OK,
    STATUS_TIMEOUT,
    ItemResult,
)


def ok(label, total_budget, containers, objective=None, from_cache=False):
    return ItemResult(
        label=label,
        key=label,
        status=STATUS_OK,
        budgets={"t": total_budget},
        buffer_capacities={"b": containers},
        objective_value=objective,
        from_cache=from_cache,
    )


class TestPercentile:
    def test_median_of_odd_sequence(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25.0) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5.0, 1.0, 9.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 9.0

    def test_single_value(self):
        assert percentile([4.2], 90.0) == 4.2

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50.0)

    def test_out_of_range_point_rejected(self):
        with pytest.raises(ValueError, match="0, 100"):
            percentile([1.0], 120.0)


class TestAggregate:
    def test_counts_and_rate(self):
        results = [
            ok("a", 10.0, 2),
            ok("b", 20.0, 4, from_cache=True),
            ItemResult(label="c", key="c", status=STATUS_INFEASIBLE),
            ItemResult(label="d", key="d", status=STATUS_ERROR, error="boom"),
            ItemResult(label="e", key="e", status=STATUS_TIMEOUT),
        ]
        summary = aggregate_results("agg", results, elapsed_seconds=2.0)
        assert summary.total == 5
        assert summary.feasible == 2
        assert summary.infeasible == 1
        assert summary.errors == 1
        assert summary.timeouts == 1
        # errors and timeouts are undecided, not infeasible
        assert summary.feasibility_rate == pytest.approx(2.0 / 3.0)
        assert summary.cache_hits == 1
        assert summary.solved == 4
        assert summary.throughput == pytest.approx(2.5)

    def test_percentile_fields(self):
        results = [ok(str(i), float(i), i, objective=float(i)) for i in range(1, 11)]
        summary = aggregate_results("p", results)
        assert summary.total_budget_percentiles["p50"] == pytest.approx(5.5)
        assert summary.total_budget_percentiles["max"] == 10.0
        assert summary.total_capacity_percentiles["max"] == 10.0
        assert summary.objective_percentiles["p10"] == pytest.approx(1.9)

    def test_empty_feasible_set_has_no_percentiles(self):
        results = [ItemResult(label="x", key="x", status=STATUS_INFEASIBLE)]
        summary = aggregate_results("none", results)
        assert summary.total_budget_percentiles == {}
        assert summary.feasibility_rate == 0.0

    def test_unknown_status_rejected(self):
        with pytest.raises(ValueError, match="unknown item status"):
            aggregate_results(
                "bad", [ItemResult(label="x", key="x", status="exploded")]
            )

    def test_deterministic_dict_excludes_operational_fields(self):
        summary = aggregate_results("d", [ok("a", 1.0, 1)], elapsed_seconds=1.0)
        deterministic = summary.deterministic_dict()
        for operational in ("cache_hits", "solved", "elapsed_seconds", "throughput"):
            assert operational not in deterministic
        assert set(deterministic) < set(summary.as_dict())

    def test_render_produces_a_table(self):
        summary = aggregate_results("r", [ok("a", 1.0, 1)], elapsed_seconds=0.5)
        text = summary.render()
        assert "feasibility_rate" in text
        assert "allocations_per_second" in text

    def test_summary_without_elapsed_omits_throughput(self):
        summary = aggregate_results("r", [ok("a", 1.0, 1)])
        assert summary.throughput is None
        assert "allocations_per_second" not in summary.render()

    def test_per_item_rows_in_order(self):
        results = [ok("a", 1.0, 1), ItemResult(label="b", key="b", status=STATUS_ERROR)]
        rows = per_item_rows(results)
        assert [row["item"] for row in rows] == ["a", "b"]

    def test_summary_is_a_dataclass_with_campaign_name(self):
        summary = CampaignSummary(
            campaign="x",
            total=0,
            feasible=0,
            infeasible=0,
            errors=0,
            timeouts=0,
            feasibility_rate=0.0,
        )
        assert summary.as_dict()["campaign"] == "x"
