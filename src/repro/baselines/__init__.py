"""Baseline mapping flows and independent oracles.

* :mod:`~repro.baselines.two_phase` — the classical two-phase flow (budget
  first or buffer first) the paper improves upon.
* :mod:`~repro.baselines.buffer_sizing` — LP buffer sizing for fixed budgets.
* :mod:`~repro.baselines.budget_minimization` — budget minimisation for fixed
  capacities, a solver-free bisection oracle and the closed-form solution of
  the paper's producer-consumer experiment.
"""

from repro.baselines.budget_minimization import (
    bisect_uniform_budget,
    is_uniform_budget_feasible,
    minimal_budgets_fixed_capacities,
    producer_consumer_minimum_budget,
)
from repro.baselines.buffer_sizing import minimal_buffer_capacities
from repro.baselines.two_phase import (
    TwoPhaseOrder,
    TwoPhaseResult,
    compare_with_joint,
    minimum_buffer_capacities,
    minimum_throughput_budgets,
    run_two_phase,
)

__all__ = [
    "TwoPhaseOrder",
    "TwoPhaseResult",
    "bisect_uniform_budget",
    "compare_with_joint",
    "is_uniform_budget_feasible",
    "minimal_budgets_fixed_capacities",
    "minimal_buffer_capacities",
    "minimum_buffer_capacities",
    "minimum_throughput_budgets",
    "producer_consumer_minimum_budget",
    "run_two_phase",
]
