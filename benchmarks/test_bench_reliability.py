"""Benchmark: the price of durability, and the payoff of snapshots.

Two questions about the crash-safe admission path:

* **journal + snapshot overhead** — :func:`replay_trace_durably` does
  everything :func:`replay_trace` does plus one checksummed ``O_APPEND``
  write per event and one atomic snapshot every few events.  The durable
  run must stay within a few percent of the plain incremental replay (the
  solve dominates; the WAL is one small line per event).
* **restore-from-snapshot vs full replay** — after a crash, restoring from
  snapshot + journal tail re-solves only the post-snapshot events, while a
  journal-only restore replays the whole history.  The snapshot restore
  must be faster on a trace whose snapshot covers most of it.

Both paths must agree with the plain replay within 1e-6 — durability is a
pure robustness change, never a numerical one.
"""

from __future__ import annotations

import itertools
import os
import time

import pytest

from repro.core import AllocatorOptions, JointAllocator, random_trace, replay_trace
from repro.reliability import (
    default_snapshot_path,
    load_snapshot,
    read_journal,
    replay_trace_durably,
    restore_controller,
)

EVENT_COUNT = 12
SNAPSHOT_EVERY = 4
#: Best-of-REPEATS wall times absorb one-off noise spikes.
REPEATS = 3
#: Wall-clock races are unreliable on shared CI runners; the smoke job
#: still checks the equivalences.
STRICT_TIMING = not os.environ.get("CI")
#: Ceiling on the durable path's overhead over the plain replay.
MAX_OVERHEAD = 0.05

_fresh = itertools.count()


def _options():
    return AllocatorOptions(verify=False, run_simulation=False)


def _allocator():
    return JointAllocator(options=_options())


def _trace():
    return random_trace(
        event_count=EVENT_COUNT, seed=31, task_count=3, processor_count=3
    )


def _interleaved_best_times(run_a, run_b):
    """Best-of-REPEATS for two competitors, alternating runs (fair race)."""
    best_a = best_b = float("inf")
    result_a = result_b = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result_a = run_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        result_b = run_b()
        best_b = min(best_b, time.perf_counter() - start)
    return (best_a, result_a), (best_b, result_b)


def _assert_equivalent(ours, theirs):
    assert [r.status for r in ours.records] == [r.status for r in theirs.records]
    for a, b in zip(ours.records, theirs.records):
        if b.objective_value is not None:
            assert a.objective_value == pytest.approx(b.objective_value, abs=1e-6)


def test_bench_durable_replay_overhead(benchmark, record_series, tmp_path):
    trace = _trace()

    def plain():
        return replay_trace(trace, allocator=_allocator())

    def durable():
        journal_path = tmp_path / f"run-{next(_fresh)}.journal"
        return replay_trace_durably(
            trace,
            journal_path,
            snapshot_every=SNAPSHOT_EVERY,
            allocator=_allocator(),
        )

    (plain_time, plain_result), (durable_time, durable_result) = (
        _interleaved_best_times(plain, durable)
    )
    _assert_equivalent(durable_result, plain_result)

    overhead = durable_time / plain_time - 1.0
    if STRICT_TIMING:
        assert overhead < MAX_OVERHEAD, (
            f"durable replay cost {overhead * 100:.1f}% over the plain replay "
            f"({durable_time * 1e3:.1f} ms vs {plain_time * 1e3:.1f} ms)"
        )

    record_series(benchmark, "events", EVENT_COUNT)
    record_series(benchmark, "plain_seconds", plain_time)
    record_series(benchmark, "durable_seconds", durable_time)
    record_series(benchmark, "overhead_fraction", overhead)
    benchmark(durable)


def test_bench_restore_from_snapshot_vs_full_replay(
    benchmark, record_series, tmp_path
):
    trace = _trace()
    journal_path = tmp_path / "run.journal"
    baseline = replay_trace_durably(
        trace,
        journal_path,
        snapshot_every=SNAPSHOT_EVERY,
        allocator=_allocator(),
    )
    contents = read_journal(journal_path)
    snapshot = load_snapshot(default_snapshot_path(journal_path))
    # The last snapshot covers all but the journal tail.
    assert snapshot.journal_seq == (EVENT_COUNT // SNAPSHOT_EVERY) * SNAPSHOT_EVERY

    def from_snapshot():
        return restore_controller(contents, snapshot, allocator=_allocator())

    def full_replay():
        return restore_controller(contents, allocator=_allocator())

    (snap_time, (snap_controller, snap_records)), (full_time, (_, full_records)) = (
        _interleaved_best_times(from_snapshot, full_replay)
    )

    # Both restores land on the uninterrupted run's timeline and workload.
    for restored in (snap_records, full_records):
        assert [r.status for r in restored] == [
            r.status for r in baseline.records
        ]
    if baseline.final_mapped is not None:
        assert snap_controller.mapped.objective_value == pytest.approx(
            baseline.final_mapped.objective_value, abs=1e-6
        )

    if STRICT_TIMING:
        assert snap_time < full_time, (
            f"snapshot restore took {snap_time * 1e3:.1f} ms vs "
            f"{full_time * 1e3:.1f} ms full journal replay"
        )

    record_series(benchmark, "events", EVENT_COUNT)
    record_series(benchmark, "snapshot_seq", snapshot.journal_seq)
    record_series(benchmark, "snapshot_restore_seconds", snap_time)
    record_series(benchmark, "full_replay_seconds", full_time)
    record_series(
        benchmark, "speedup", full_time / max(snap_time, 1e-12)
    )
    benchmark(from_snapshot)
