"""Dictionary / JSON (de)serialisation of the application model.

The on-disk format is a plain nested dictionary so that configurations can be
stored next to experiment results, diffed, and re-loaded without the library.
Round-tripping is covered by property-based tests.

Schema versioning
-----------------

Version 1 is the pre-generalisation schema: single-phase tasks, unit token
rates, untyped unit-speed processors.  Version 2 adds the optional
``phases`` / ``cycles_by_type`` task fields, ``production_rates`` /
``consumption_rates`` buffer fields and ``proc_type`` / ``speed`` /
``dvfs_levels`` processor fields.  Writers emit the new keys *only when the
value differs from the default* and stamp ``format_version: 1`` whenever the
model is expressible in the old schema — so a legacy configuration
serialises byte-identically to the pre-refactor code (batch cache keys hash
this dictionary, and old campaign cache entries must still hit).  Readers
accept both versions; missing keys load as the defaults.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.exceptions import ModelError
from repro.taskgraph.buffer import Buffer
from repro.taskgraph.configuration import Configuration, MappedConfiguration
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.platform import Memory, Platform, Processor
from repro.taskgraph.task import Task

FORMAT_VERSION = 2
LEGACY_FORMAT_VERSION = 1


# -- to dict -----------------------------------------------------------------
def task_to_dict(task: Task) -> Dict[str, object]:
    data: Dict[str, object] = {
        "name": task.name,
        "wcet": task.wcet,
        "processor": task.processor,
        "budget_weight": task.budget_weight,
        "min_budget": task.min_budget,
        "max_budget": task.max_budget,
    }
    if task.phases is not None:
        data["phases"] = list(task.phases)
    if task.cycles_by_type is not None:
        data["cycles_by_type"] = {t: c for t, c in task.cycles_by_type}
    return data


def buffer_to_dict(buffer: Buffer) -> Dict[str, object]:
    data: Dict[str, object] = {
        "name": buffer.name,
        "source": buffer.source,
        "target": buffer.target,
        "memory": buffer.memory,
        "container_size": buffer.container_size,
        "initial_tokens": buffer.initial_tokens,
        "capacity_weight": buffer.capacity_weight,
        "min_capacity": buffer.min_capacity,
        "max_capacity": buffer.max_capacity,
    }
    if buffer.production_rates is not None:
        data["production_rates"] = list(buffer.production_rates)
    if buffer.consumption_rates is not None:
        data["consumption_rates"] = list(buffer.consumption_rates)
    return data


def task_graph_to_dict(graph: TaskGraph) -> Dict[str, object]:
    return {
        "name": graph.name,
        "period": graph.period,
        "tasks": [task_to_dict(task) for task in graph.tasks],
        "buffers": [buffer_to_dict(buffer) for buffer in graph.buffers],
    }


def _processor_to_dict(processor: Processor) -> Dict[str, object]:
    data: Dict[str, object] = {
        "name": processor.name,
        "replenishment_interval": processor.replenishment_interval,
        "scheduling_overhead": processor.scheduling_overhead,
    }
    if processor.proc_type != "generic":
        data["proc_type"] = processor.proc_type
    if processor.speed != 1.0:
        data["speed"] = processor.speed
    if processor.dvfs_levels is not None:
        data["dvfs_levels"] = list(processor.dvfs_levels)
    return data


def platform_to_dict(platform: Platform) -> Dict[str, object]:
    return {
        "name": platform.name,
        "processors": [
            _processor_to_dict(p) for p in platform.processors.values()
        ],
        "memories": [
            {"name": m.name, "capacity": m.capacity} for m in platform.memories.values()
        ],
    }


def _processor_is_extended(processor: Processor) -> bool:
    return (
        processor.proc_type != "generic"
        or processor.speed != 1.0
        or processor.dvfs_levels is not None
    )


def uses_extended_model(configuration: Configuration) -> bool:
    """Whether a configuration needs the version-2 schema to round-trip."""
    if any(
        _processor_is_extended(p)
        for p in configuration.platform.processors.values()
    ):
        return True
    for graph in configuration.task_graphs:
        if any(
            task.phases is not None or task.cycles_by_type is not None
            for task in graph.tasks
        ):
            return True
        if any(
            buffer.production_rates is not None
            or buffer.consumption_rates is not None
            for buffer in graph.buffers
        ):
            return True
    return False


def _format_version_for(configuration: Configuration) -> int:
    return FORMAT_VERSION if uses_extended_model(configuration) else LEGACY_FORMAT_VERSION


def configuration_to_dict(configuration: Configuration) -> Dict[str, object]:
    return {
        "format_version": _format_version_for(configuration),
        "name": configuration.name,
        "granularity": configuration.granularity,
        "platform": platform_to_dict(configuration.platform),
        "task_graphs": [task_graph_to_dict(graph) for graph in configuration.task_graphs],
    }


def mapped_configuration_to_dict(mapped: MappedConfiguration) -> Dict[str, object]:
    data = mapped.as_dict()
    data["configuration"] = configuration_to_dict(mapped.configuration)
    data["format_version"] = _format_version_for(mapped.configuration)
    return data


# -- from dict -------------------------------------------------------------------
def task_from_dict(data: Dict[str, object]) -> Task:
    phases = data.get("phases")
    cycles_by_type = data.get("cycles_by_type")
    return Task(
        name=str(data["name"]),
        wcet=float(data["wcet"]),
        processor=str(data["processor"]),
        budget_weight=float(data.get("budget_weight", 1.0)),
        min_budget=_optional_float(data.get("min_budget")),
        max_budget=_optional_float(data.get("max_budget")),
        phases=tuple(float(p) for p in phases) if phases is not None else None,
        cycles_by_type=(
            {str(t): float(c) for t, c in dict(cycles_by_type).items()}
            if cycles_by_type is not None
            else None
        ),
    )


def buffer_from_dict(data: Dict[str, object]) -> Buffer:
    production_rates = data.get("production_rates")
    consumption_rates = data.get("consumption_rates")
    return Buffer(
        name=str(data["name"]),
        source=str(data["source"]),
        target=str(data["target"]),
        memory=str(data["memory"]),
        container_size=float(data.get("container_size", 1.0)),
        initial_tokens=int(data.get("initial_tokens", 0)),
        capacity_weight=float(data.get("capacity_weight", 1.0)),
        min_capacity=_optional_int(data.get("min_capacity")),
        max_capacity=_optional_int(data.get("max_capacity")),
        production_rates=(
            tuple(int(r) for r in production_rates)
            if production_rates is not None
            else None
        ),
        consumption_rates=(
            tuple(int(r) for r in consumption_rates)
            if consumption_rates is not None
            else None
        ),
    )


def task_graph_from_dict(data: Dict[str, object]) -> TaskGraph:
    graph = TaskGraph(name=str(data["name"]), period=float(data["period"]))
    for task_data in data.get("tasks", []):
        graph.add_task(task_from_dict(task_data))
    for buffer_data in data.get("buffers", []):
        graph.add_buffer(buffer_from_dict(buffer_data))
    return graph


def platform_from_dict(data: Dict[str, object]) -> Platform:
    processors = []
    for p in data.get("processors", []):
        dvfs_levels = p.get("dvfs_levels")
        processors.append(
            Processor(
                name=str(p["name"]),
                replenishment_interval=float(p["replenishment_interval"]),
                scheduling_overhead=float(p.get("scheduling_overhead", 0.0)),
                proc_type=str(p.get("proc_type", "generic")),
                speed=float(p.get("speed", 1.0)),
                dvfs_levels=(
                    tuple(float(level) for level in dvfs_levels)
                    if dvfs_levels is not None
                    else None
                ),
            )
        )
    memories = [
        Memory(name=str(m["name"]), capacity=_optional_float(m.get("capacity")))
        for m in data.get("memories", [])
    ]
    return Platform(processors=processors, memories=memories, name=str(data.get("name", "platform")))


def configuration_from_dict(data: Dict[str, object]) -> Configuration:
    version = int(data.get("format_version", LEGACY_FORMAT_VERSION))
    if version > FORMAT_VERSION:
        raise ModelError(
            f"configuration format version {version} is newer than supported "
            f"version {FORMAT_VERSION}"
        )
    platform = platform_from_dict(data["platform"])
    graphs = [task_graph_from_dict(g) for g in data.get("task_graphs", [])]
    return Configuration(
        platform=platform,
        task_graphs=graphs,
        granularity=float(data.get("granularity", 1.0)),
        name=str(data.get("name", "configuration")),
    )


def _optional_float(value: object) -> object:
    return None if value is None else float(value)  # type: ignore[arg-type]


def _optional_int(value: object) -> object:
    return None if value is None else int(value)  # type: ignore[arg-type]


# -- JSON convenience ------------------------------------------------------------------
def configuration_to_json(configuration: Configuration, indent: int = 2) -> str:
    return json.dumps(configuration_to_dict(configuration), indent=indent, sort_keys=True)


def configuration_from_json(text: str) -> Configuration:
    return configuration_from_dict(json.loads(text))


def save_configuration(configuration: Configuration, path: Union[str, Path]) -> None:
    Path(path).write_text(configuration_to_json(configuration), encoding="utf-8")


def load_configuration(path: Union[str, Path]) -> Configuration:
    return configuration_from_json(Path(path).read_text(encoding="utf-8"))
