"""Equivalence lock-ins for the generalised execution model.

The generalisation is only allowed to *extend* the paper's model: a
single-phase cyclo-static task graph must analyse identically to the plain
SDF formulation, and a heterogeneous platform whose processors all run at
unit speed must allocate identically to the homogeneous platform — across
one-shot allocation, workload sessions and a replayed admission trace.
"""

from __future__ import annotations

import pytest

from repro.core.admission import AdmissionTrace, replay_trace
from repro.core.allocator import allocate, allocate_workload
from repro.dataflow.construction import (
    _build_cyclo_static_specification,
    build_srdf_specification,
    instantiate_srdf,
)
from repro.dataflow.mcr import maximum_cycle_ratio
from repro.taskgraph import (
    Buffer,
    Configuration,
    Task,
    TaskGraph,
    heterogeneous_platform,
    workload_from_configurations,
)
from repro.taskgraph.generators import chain_configuration


def _single_phase_csdf_twin(configuration: Configuration) -> Configuration:
    """The same configuration expressed through the CSDF fields trivially."""
    graphs = []
    for graph in configuration.task_graphs:
        twin = TaskGraph(name=graph.name, period=graph.period)
        for task in graph.tasks:
            twin.add_task(
                Task(
                    name=task.name,
                    wcet=0.0,
                    phases=(task.wcet,),
                    processor=task.processor,
                    budget_weight=task.budget_weight,
                    min_budget=task.min_budget,
                    max_budget=task.max_budget,
                )
            )
        for buffer in graph.buffers:
            twin.add_buffer(
                Buffer(
                    name=buffer.name,
                    source=buffer.source,
                    target=buffer.target,
                    memory=buffer.memory,
                    container_size=buffer.container_size,
                    initial_tokens=buffer.initial_tokens,
                    capacity_weight=buffer.capacity_weight,
                    min_capacity=buffer.min_capacity,
                    max_capacity=buffer.max_capacity,
                    production_rates=(1,),
                    consumption_rates=(1,),
                )
            )
        graphs.append(twin)
    return Configuration(
        platform=configuration.platform,
        task_graphs=graphs,
        granularity=configuration.granularity,
        name=configuration.name,
    )


def _uniform_hetero_twin(configuration: Configuration) -> Configuration:
    """The same configuration on a typed platform at uniform unit speed.

    The single processor type is named ``p`` so the generated processors
    (``p1``, ``p2``, …) keep the homogeneous names and the task bindings
    carry over verbatim; every task declares an explicit per-type cycle
    table whose only entry equals its ``wcet``.
    """
    processor_count = len(configuration.platform)
    interval = next(iter(configuration.platform)).replenishment_interval
    platform = heterogeneous_platform(
        {"p": {"count": processor_count}}, replenishment_interval=interval
    )
    graphs = []
    for graph in configuration.task_graphs:
        twin = TaskGraph(name=graph.name, period=graph.period)
        for task in graph.tasks:
            twin.add_task(
                Task(
                    name=task.name,
                    wcet=task.wcet,
                    processor=task.processor,
                    budget_weight=task.budget_weight,
                    min_budget=task.min_budget,
                    max_budget=task.max_budget,
                    cycles_by_type={"p": task.wcet},
                )
            )
        for buffer in graph.buffers:
            twin.add_buffer(buffer)
        graphs.append(twin)
    return Configuration(
        platform=platform,
        task_graphs=graphs,
        granularity=configuration.granularity,
        name=configuration.name,
    )


def _assert_allocations_match(mapped_a, mapped_b, tolerance: float = 1e-9):
    assert set(mapped_a.budgets) == set(mapped_b.budgets)
    for name, budget in mapped_a.budgets.items():
        assert mapped_b.budgets[name] == pytest.approx(budget, abs=tolerance)
    assert mapped_a.buffer_capacities == mapped_b.buffer_capacities
    assert mapped_b.objective_value == pytest.approx(
        mapped_a.objective_value, abs=tolerance
    )


class TestSinglePhaseCsdfEqualsSdf:
    def test_not_classified_as_cyclo_static(self):
        twin = _single_phase_csdf_twin(chain_configuration())
        assert all(not graph.is_cyclo_static for graph in twin.task_graphs)

    def test_specifications_are_identical(self):
        plain = chain_configuration()
        twin = _single_phase_csdf_twin(plain)
        for plain_graph, twin_graph in zip(plain.task_graphs, twin.task_graphs):
            assert build_srdf_specification(twin_graph) == build_srdf_specification(
                plain_graph
            )

    def test_forced_expansion_instantiates_the_same_graph(self):
        # Route the trivial graph through the CSDF expansion explicitly: the
        # unrolled specification must instantiate token-for-token like the
        # legacy one (the expansion's single-rate reduction).
        plain = chain_configuration()
        graph = plain.task_graphs[0]
        budgets = {task.name: 8.0 for task in graph.tasks}
        capacities = {buffer.name: 3 for buffer in graph.buffers}
        legacy = instantiate_srdf(
            build_srdf_specification(graph),
            graph,
            plain.platform,
            budgets,
            capacities,
        )
        expanded = instantiate_srdf(
            _build_cyclo_static_specification(graph),
            graph,
            plain.platform,
            budgets,
            capacities,
        )
        assert [(a.name, a.firing_duration) for a in expanded.actors] == [
            (a.name, a.firing_duration) for a in legacy.actors
        ]
        assert [(q.name, q.source, q.target, q.tokens) for q in expanded.queues] == [
            (q.name, q.source, q.target, q.tokens) for q in legacy.queues
        ]
        assert maximum_cycle_ratio(expanded) == pytest.approx(
            maximum_cycle_ratio(legacy), abs=1e-9
        )

    def test_allocation_matches(self):
        plain = chain_configuration(max_capacity=8)
        twin = _single_phase_csdf_twin(plain)
        _assert_allocations_match(allocate(plain), allocate(twin))

    def test_workload_allocation_matches(self):
        plain_a = chain_configuration(max_capacity=8)
        plain_b = chain_configuration(stages=2, max_capacity=8)
        plain_b.task_graphs[0].name = "second"
        plain = workload_from_configurations(
            [plain_a, plain_b], name="plain-workload"
        )
        twin = workload_from_configurations(
            [_single_phase_csdf_twin(plain_a), _single_phase_csdf_twin(plain_b)],
            name="twin-workload",
        )
        mapped_plain = allocate_workload(plain)
        mapped_twin = allocate_workload(twin)
        assert mapped_twin.flattened("budgets") == pytest.approx(
            mapped_plain.flattened("budgets"), abs=1e-9
        )
        assert mapped_twin.flattened("buffer_capacities") == mapped_plain.flattened(
            "buffer_capacities"
        )


class TestUniformHeterogeneousEqualsHomogeneous:
    def test_platform_is_uniform_speed(self):
        twin = _uniform_hetero_twin(chain_configuration())
        assert twin.platform.is_uniform_speed
        assert all(p.proc_type == "p" for p in twin.platform)

    def test_allocation_matches(self):
        plain = chain_configuration(max_capacity=8)
        twin = _uniform_hetero_twin(plain)
        _assert_allocations_match(allocate(plain), allocate(twin))

    def test_workload_allocation_matches(self):
        plain_a = chain_configuration(max_capacity=8)
        plain_b = chain_configuration(stages=2, max_capacity=8)
        plain_b.task_graphs[0].name = "second"
        plain = workload_from_configurations(
            [plain_a, plain_b], name="plain-workload"
        )
        twin = workload_from_configurations(
            [_uniform_hetero_twin(plain_a), _uniform_hetero_twin(plain_b)],
            name="twin-workload",
            platform=_uniform_hetero_twin(plain_a).platform,
        )
        mapped_plain = allocate_workload(plain)
        mapped_twin = allocate_workload(twin)
        assert mapped_twin.flattened("budgets") == pytest.approx(
            mapped_plain.flattened("budgets"), abs=1e-9
        )

    def test_replayed_admission_trace_matches(self):
        def build_trace(transform):
            app_a = transform(chain_configuration(max_capacity=8))
            app_b = transform(chain_configuration(max_capacity=8))
            # A hog whose per-task demand cannot fit next to the others.
            hog = transform(chain_configuration(wcet=9.0, max_capacity=8))
            trace = AdmissionTrace(platform=app_a.platform, name="equiv")
            trace.arrive("app-a", app_a)
            trace.arrive("app-b", app_b)
            trace.arrive("hog", hog)
            trace.depart("app-a")
            return trace

        plain_result = replay_trace(build_trace(lambda c: c))
        twin_result = replay_trace(build_trace(_uniform_hetero_twin))
        plain_records = [(r.action, r.application, r.status) for r in plain_result.records]
        twin_records = [(r.action, r.application, r.status) for r in twin_result.records]
        assert twin_records == plain_records
        statuses = [r.status for r in plain_result.records]
        assert statuses == ["admitted", "admitted", "rejected", "departed"]
        for plain_record, twin_record in zip(plain_result.records, twin_result.records):
            if plain_record.objective_value is None:
                assert twin_record.objective_value is None
            else:
                assert twin_record.objective_value == pytest.approx(
                    plain_record.objective_value, abs=1e-9
                )
