"""Campaign-level aggregation of batch results.

Summarises a list of :class:`~repro.batch.executor.ItemResult` records into
feasibility rates, resource percentiles and throughput figures.  The summary
deliberately separates *deterministic* fields (counts, rates, percentiles —
identical for any worker count and for warm/cold cache runs) from
*operational* fields (cache hits, wall-clock, allocations/sec), so that
equivalence checks can compare :meth:`CampaignSummary.deterministic_dict`
byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.report import render_table
from repro.batch.executor import (
    STATUS_ERROR,
    STATUS_INFEASIBLE,
    STATUS_OK,
    STATUS_TIMEOUT,
    ItemResult,
)

#: Percentile points reported for every metric.
PERCENTILE_POINTS = (10.0, 50.0, 90.0, 100.0)


def percentile(values: Sequence[float], point: float) -> float:
    """Linear-interpolation percentile (no numpy dependency).

    ``point`` is in percent (0–100); values need not be sorted.
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= point <= 100.0:
        raise ValueError(f"percentile point must be in [0, 100], got {point!r}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (point / 100.0) * (len(ordered) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = rank - lower
    return float(ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction)


def _percentiles(values: Sequence[float]) -> Dict[str, float]:
    if not values:
        return {}
    labels = {100.0: "max"}
    return {
        labels.get(point, f"p{int(point)}"): round(percentile(values, point), 6)
        for point in PERCENTILE_POINTS
    }


@dataclass
class CampaignSummary:
    """Aggregate view of one batch run."""

    campaign: str
    total: int
    feasible: int
    infeasible: int
    errors: int
    timeouts: int
    feasibility_rate: float
    total_budget_percentiles: Dict[str, float] = field(default_factory=dict)
    total_capacity_percentiles: Dict[str, float] = field(default_factory=dict)
    objective_percentiles: Dict[str, float] = field(default_factory=dict)
    # operational (excluded from the deterministic view):
    cache_hits: int = 0
    solved: int = 0
    elapsed_seconds: Optional[float] = None
    throughput: Optional[float] = None  #: allocations per second, end to end

    def deterministic_dict(self) -> Dict[str, object]:
        """Fields that must match between 1-worker, N-worker and warm runs."""
        return {
            "campaign": self.campaign,
            "total": self.total,
            "feasible": self.feasible,
            "infeasible": self.infeasible,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "feasibility_rate": self.feasibility_rate,
            "total_budget_percentiles": dict(self.total_budget_percentiles),
            "total_capacity_percentiles": dict(self.total_capacity_percentiles),
            "objective_percentiles": dict(self.objective_percentiles),
        }

    def as_dict(self) -> Dict[str, object]:
        data = self.deterministic_dict()
        data.update(
            {
                "cache_hits": self.cache_hits,
                "solved": self.solved,
                "elapsed_seconds": self.elapsed_seconds,
                "throughput": self.throughput,
            }
        )
        return data

    def rows(self) -> List[Dict[str, object]]:
        """Metric/value rows for :func:`repro.analysis.report.render_table`."""
        rows: List[Dict[str, object]] = [
            {"metric": "campaign", "value": self.campaign},
            {"metric": "items", "value": self.total},
            {"metric": "feasible", "value": self.feasible},
            {"metric": "infeasible", "value": self.infeasible},
            {"metric": "errors", "value": self.errors},
            {"metric": "timeouts", "value": self.timeouts},
            {"metric": "feasibility_rate", "value": round(self.feasibility_rate, 4)},
        ]
        for name, values in (
            ("total_budget", self.total_budget_percentiles),
            ("containers", self.total_capacity_percentiles),
            ("objective", self.objective_percentiles),
        ):
            for label, value in values.items():
                rows.append({"metric": f"{name}[{label}]", "value": value})
        rows.append({"metric": "cache_hits", "value": self.cache_hits})
        rows.append({"metric": "solved", "value": self.solved})
        if self.elapsed_seconds is not None:
            rows.append(
                {"metric": "elapsed_seconds", "value": round(self.elapsed_seconds, 4)}
            )
        if self.throughput is not None:
            rows.append(
                {"metric": "allocations_per_second", "value": round(self.throughput, 3)}
            )
        return rows

    def render(self) -> str:
        return render_table(self.rows())


def aggregate_results(
    campaign: str,
    results: Sequence[ItemResult],
    elapsed_seconds: Optional[float] = None,
) -> CampaignSummary:
    """Reduce per-item results to a :class:`CampaignSummary`.

    ``elapsed_seconds`` is the wall-clock time of the whole run; when given,
    the end-to-end throughput (items per second, cache hits included) is
    reported alongside the deterministic statistics.
    """
    counts = {
        STATUS_OK: 0,
        STATUS_INFEASIBLE: 0,
        STATUS_ERROR: 0,
        STATUS_TIMEOUT: 0,
    }
    for result in results:
        if result.status not in counts:
            raise ValueError(f"unknown item status {result.status!r}")
        counts[result.status] += 1
    feasible_results = [result for result in results if result.feasible]
    decided = counts[STATUS_OK] + counts[STATUS_INFEASIBLE]
    throughput: Optional[float] = None
    if elapsed_seconds is not None and elapsed_seconds > 0.0:
        throughput = len(results) / elapsed_seconds
    return CampaignSummary(
        campaign=campaign,
        total=len(results),
        feasible=counts[STATUS_OK],
        infeasible=counts[STATUS_INFEASIBLE],
        errors=counts[STATUS_ERROR],
        timeouts=counts[STATUS_TIMEOUT],
        feasibility_rate=(counts[STATUS_OK] / decided) if decided else 0.0,
        total_budget_percentiles=_percentiles(
            [result.total_budget for result in feasible_results]
        ),
        total_capacity_percentiles=_percentiles(
            [float(result.total_capacity) for result in feasible_results]
        ),
        objective_percentiles=_percentiles(
            [
                float(result.objective_value)
                for result in feasible_results
                if result.objective_value is not None
            ]
        ),
        cache_hits=sum(1 for result in results if result.from_cache),
        solved=sum(1 for result in results if not result.from_cache),
        elapsed_seconds=elapsed_seconds,
        throughput=throughput,
    )


def per_item_rows(results: Sequence[ItemResult]) -> List[Dict[str, object]]:
    """Per-item table rows, in campaign order."""
    return [result.row() for result in results]
