"""Batch-engine throughput: serial vs. parallel vs. warm cache.

A ~50-instance random-DAG campaign is pushed through the batch engine three
ways: inline on one worker, fanned out over four worker processes, and with
a fully warm result cache.  The recorded metric is end-to-end throughput in
allocations per second; the warm cache must beat solving, and on a
multi-core machine the process pool must beat the serial run.
"""

from __future__ import annotations

import os

import pytest

from repro.batch import (
    BatchExecutor,
    CampaignSpec,
    ExecutorConfig,
    ResultCache,
    aggregate_results,
)

CAMPAIGN = {
    "name": "bench-batch",
    "seed": 17,
    "entries": [
        {
            "generator": "random_dag",
            "params": {"task_count": 8, "processor_count": 8, "max_capacity": 8},
            "count": 50,
        }
    ],
}

PARALLEL_WORKERS = 4

#: Wall-clock measurements shared between the benchmarks of this module
#: (pytest runs them in definition order, serial first).
MEASURED = {}


@pytest.fixture(scope="module")
def items():
    return CampaignSpec.from_dict(CAMPAIGN).expand()


def _run(items, workers, cache=None):
    executor = BatchExecutor(config=ExecutorConfig(workers=workers), cache=cache)
    return executor.run(items)


def _throughput(benchmark, items, results):
    benchmark.extra_info["instances"] = len(items)
    benchmark.extra_info["allocations_per_second"] = round(
        len(items) / benchmark.stats["mean"], 2
    )
    summary = aggregate_results("bench-batch", results)
    benchmark.extra_info["feasible"] = summary.feasible
    assert summary.errors == 0 and summary.timeouts == 0
    return benchmark.extra_info["allocations_per_second"]


@pytest.mark.benchmark(group="batch-engine")
def test_batch_serial(benchmark, items):
    results = benchmark.pedantic(
        lambda: _run(items, workers=1), rounds=1, iterations=1, warmup_rounds=0
    )
    MEASURED["serial_wall"] = benchmark.stats["mean"]
    MEASURED["serial_results"] = results
    throughput = _throughput(benchmark, items, results)
    assert throughput > 0.0


@pytest.mark.benchmark(group="batch-engine")
def test_batch_parallel(benchmark, items):
    results = benchmark.pedantic(
        lambda: _run(items, workers=PARALLEL_WORKERS),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    parallel_throughput = _throughput(benchmark, items, results)

    serial_results = MEASURED.get("serial_results") or _run(items, workers=1)
    assert [result.deterministic_dict() for result in results] == [
        result.deterministic_dict() for result in serial_results
    ]
    serial_wall = MEASURED.get("serial_wall")
    if serial_wall is not None:
        serial_throughput = len(items) / serial_wall
        benchmark.extra_info["serial_allocations_per_second"] = round(
            serial_throughput, 2
        )
        if os.cpu_count() and os.cpu_count() >= PARALLEL_WORKERS:
            # With a core per worker, the fan-out must beat the serial
            # wall-clock (both measured end-to-end, pool overhead included).
            # Fewer cores (shared CI runners, this container) can't show a
            # speedup reliably, so then the numbers are only recorded.
            assert parallel_throughput > serial_throughput


@pytest.mark.benchmark(group="batch-engine")
def test_batch_warm_cache(benchmark, items, tmp_path_factory):
    cache = ResultCache(tmp_path_factory.mktemp("bench-cache"))
    cold_results = _run(items, workers=1, cache=cache)
    cold_elapsed = sum(result.solve_seconds for result in cold_results)

    results = benchmark.pedantic(
        lambda: _run(items, workers=1, cache=cache),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    warm_throughput = _throughput(benchmark, items, results)
    benchmark.extra_info["cold_allocations_per_second"] = round(
        len(items) / cold_elapsed, 2
    )
    assert all(result.from_cache for result in results)
    # a warm cache serves results orders of magnitude faster than solving
    assert warm_throughput > len(items) / cold_elapsed
