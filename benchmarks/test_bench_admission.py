"""Benchmark: incremental admission re-solve vs rebuild-per-event.

A run-time arrival/departure trace over one shared platform — eight
applications arriving, a few departing, a late arrival — is driven two ways:

* **rebuild** — every event allocates the current membership from scratch
  (fresh :class:`WorkloadSocpFormulation`, full compile, cold solve), the
  only option before the incremental session-editing API;
* **incremental** — one :class:`WorkloadSession` edited per event
  (``add_application`` / ``remove_application``): unchanged applications
  keep their formulation blocks and per-block eliminations, and the previous
  optimum warm-starts every re-solve.

Both paths must produce the same per-event objectives within 1e-6; the
incremental path must be strictly faster over the trace (the workload spends
most events at four applications or more, where both the compile-once and
block-reuse savings compound).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core import AllocatorOptions, JointAllocator
from repro.taskgraph import Workload
from repro.taskgraph.generators import random_dag_configuration

#: Arrival/departure event sequence; membership peaks at 8 applications and
#: never drops below 4 once the platform has filled up.
EVENTS = (
    ("arrive", "app0"),
    ("arrive", "app1"),
    ("arrive", "app2"),
    ("arrive", "app3"),
    ("arrive", "app4"),
    ("arrive", "app5"),
    ("arrive", "app6"),
    ("arrive", "app7"),
    ("depart", "app2"),
    ("depart", "app5"),
    ("arrive", "app8"),
    ("depart", "app0"),
)
APP_COUNT = 9
#: Best-of-REPEATS wall times absorb one-off noise spikes.
REPEATS = 3
#: Wall-clock races are unreliable on shared CI runners (see
#: test_bench_block_newton); the smoke job still checks the equivalence.
STRICT_TIMING = not os.environ.get("CI")

_reference_cache = {}


def _applications():
    applications = [
        random_dag_configuration(
            task_count=4,
            processor_count=4,
            seed=31 + index,
            wcet_range=(0.5 / 8, 2.0 / 8),
        )
        for index in range(APP_COUNT)
    ]
    platform = applications[0].platform
    return platform, {f"app{index}": app for index, app in enumerate(applications)}


def _options():
    return AllocatorOptions(verify=False, run_simulation=False)


def _rebuild_trace():
    """Rebuild-per-event: a fresh workload program for every membership."""
    platform, applications = _applications()
    allocator = JointAllocator(options=_options())
    running = {}
    objectives = []
    for action, name in EVENTS:
        if action == "arrive":
            running[name] = applications[name]
        else:
            del running[name]
        workload = Workload(platform, name="rebuild")
        for app_name, configuration in running.items():
            workload.add_application(app_name, configuration)
        mapped = allocator.allocate_workload(workload)
        objectives.append(mapped.objective_value)
    return objectives


def _incremental_trace():
    """One session edited per event (the admission-control path)."""
    platform, applications = _applications()
    allocator = JointAllocator(options=_options())
    first_action, first_name = EVENTS[0]
    assert first_action == "arrive"
    workload = Workload(platform, name="incremental")
    workload.add_application(first_name, applications[first_name])
    session = allocator.workload_session(workload)
    objectives = [session.allocate().objective_value]
    for action, name in EVENTS[1:]:
        if action == "arrive":
            session.add_application(name, applications[name])
        else:
            session.remove_application(name)
        objectives.append(session.allocate().objective_value)
    return objectives, session.stats


def _interleaved_best_times(run_a, run_b):
    """Best-of-REPEATS for two competitors, alternating runs.

    Interleaving means background load during the benchmark hits both paths
    alike, so the comparison stays a fair race even on a busy machine.
    """
    best_a = best_b = float("inf")
    result_a = result_b = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result_a = run_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        result_b = run_b()
        best_b = min(best_b, time.perf_counter() - start)
    return (best_a, result_a), (best_b, result_b)


def _reference_objectives():
    if "objectives" not in _reference_cache:
        _reference_cache["objectives"] = _rebuild_trace()
    return _reference_cache["objectives"]


def test_bench_admission_trace_incremental_vs_rebuild(benchmark, record_series):
    (rebuild_time, rebuild_objectives), (incremental_time, (objectives, stats)) = (
        _interleaved_best_times(_rebuild_trace, _incremental_trace)
    )
    _reference_cache["objectives"] = rebuild_objectives

    # Identical per-event optima: the incremental path is a pure
    # performance change.
    assert len(objectives) == len(EVENTS)
    for event, (warm, cold) in enumerate(zip(objectives, rebuild_objectives)):
        assert warm == pytest.approx(cold, abs=1e-6), EVENTS[event]

    # One compile per event (vs one *full rebuild* per event), warm starts
    # throughout, never a pinned-limit rebuild fallback.
    assert stats.compiles == len(EVENTS)
    assert stats.rebuilds == 0
    assert stats.warm_started >= len(EVENTS) - 1

    if STRICT_TIMING:
        assert incremental_time < rebuild_time, (
            f"incremental admission took {incremental_time * 1e3:.1f} ms vs "
            f"{rebuild_time * 1e3:.1f} ms rebuild-per-event"
        )

    record_series(benchmark, "events", len(EVENTS))
    record_series(benchmark, "rebuild_seconds", rebuild_time)
    record_series(benchmark, "incremental_seconds", incremental_time)
    record_series(
        benchmark, "speedup", rebuild_time / max(incremental_time, 1e-12)
    )
    record_series(benchmark, "warm_started", stats.warm_started)
    record_series(benchmark, "phase1_skipped", stats.phase1_skipped)
    benchmark(lambda: _incremental_trace())


def test_bench_admission_trace_rebuild_baseline(benchmark, record_series):
    objectives = benchmark(_rebuild_trace)
    assert len(objectives) == len(EVENTS)
    record_series(benchmark, "events", len(EVENTS))
