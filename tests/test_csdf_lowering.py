"""Unit tests of the CSDF → SRDF lowering in dataflow/construction.

The expansion is checked structurally (actor/queue counts, repetition
vectors), against rejection of malformed rate profiles, and against a
hand-computed two-phase chain whose maximum cycle ratio is known exactly.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ModelError
from repro.dataflow.construction import (
    QueueKind,
    build_srdf_specification,
    instantiate_srdf,
)
from repro.dataflow.mcr import is_period_feasible, maximum_cycle_ratio
from repro.taskgraph import (
    Buffer,
    Memory,
    Platform,
    Processor,
    Task,
    TaskGraph,
)


def _platform(count: int = 2, interval: float = 4.0) -> Platform:
    return Platform(
        processors=[
            Processor(name=f"p{i + 1}", replenishment_interval=interval)
            for i in range(count)
        ],
        memories=[Memory(name="m1")],
    )


def _two_phase_chain() -> TaskGraph:
    """Two-phase producer feeding a single-phase consumer.

    ``a`` cycles through phases of 1.0 and 2.0 Mcycles, producing one token
    per phase; ``b`` consumes two tokens per firing.  The balance equations
    give ``q(a) = q(b) = 1``, hence ``R(a) = 2`` and ``R(b) = 1`` with
    ``T = 2`` tokens moved per iteration.
    """
    graph = TaskGraph(name="two-phase", period=10.0)
    graph.add_task(Task(name="a", wcet=0.0, phases=(1.0, 2.0), processor="p1"))
    graph.add_task(Task(name="b", wcet=1.0, processor="p2"))
    graph.add_buffer(
        Buffer(
            name="c",
            source="a",
            target="b",
            memory="m1",
            production_rates=(1, 1),
            consumption_rates=(2,),
        )
    )
    return graph


class TestStructure:
    def test_repetition_vector_of_two_phase_chain(self):
        graph = _two_phase_chain()
        assert graph.is_cyclo_static
        assert graph.repetitions() == {"a": 1, "b": 1}

    def test_repetition_vector_scales_with_rates(self):
        graph = TaskGraph(name="scaled", period=10.0)
        graph.add_task(Task(name="a", wcet=1.0, processor="p1"))
        graph.add_task(Task(name="b", wcet=1.0, processor="p2"))
        graph.add_buffer(
            Buffer(
                name="c",
                source="a",
                target="b",
                memory="m1",
                production_rates=(3,),
                consumption_rates=(2,),
            )
        )
        assert graph.repetitions() == {"a": 2, "b": 3}

    def test_unrolled_actor_and_queue_counts(self):
        specification = build_srdf_specification(_two_phase_chain())
        # R(a) = 2 and R(b) = 1 copies, two actors per copy.
        assert len(specification.actors) == 6
        names = set(specification.actor_names())
        assert {"a#0.v1", "a#0.v2", "a#1.v1", "a#1.v2", "b.v1", "b.v2"} == names
        # 3 internals + 2 serialisation arcs + 1 self-loop + 1 data + 2 space.
        assert len(specification.queues) == 9
        assert len(specification.queues_of_kind(QueueKind.TASK_INTERNAL)) == 3
        assert len(specification.queues_of_kind(QueueKind.SELF_LOOP)) == 3
        assert len(specification.queues_for_buffer("c", QueueKind.DATA)) == 1
        assert len(specification.queues_for_buffer("c", QueueKind.SPACE)) == 2

    def test_serialisation_chain_carries_one_token(self):
        specification = build_srdf_specification(_two_phase_chain())
        chain = {
            queue.name: queue
            for queue in specification.queues_of_kind(QueueKind.SELF_LOOP)
        }
        assert chain["a.seq0"].fixed_tokens == 0
        assert chain["a.seq1"].fixed_tokens == 1
        assert chain["a.seq1"].source == "a#1.v2"
        assert chain["a.seq1"].target == "a#0.v2"
        # The single-copy consumer keeps the legacy self-loop.
        assert chain["b.self"].fixed_tokens == 1

    def test_data_edge_binds_the_releasing_producer_copy(self):
        specification = build_srdf_specification(_two_phase_chain())
        (data,) = specification.queues_for_buffer("c", QueueKind.DATA)
        # b's single firing needs both tokens of the iteration, which only
        # a's second copy has produced.
        assert data.source == "a#1.v2"
        assert data.target == "b.v1"
        assert data.fixed_tokens == 0

    def test_space_edges_are_affine_in_the_capacity(self):
        specification = build_srdf_specification(_two_phase_chain())
        space = {
            queue.name: queue
            for queue in specification.queues_for_buffer("c", QueueKind.SPACE)
        }
        # T = 2 tokens per iteration: scale 1/2; offsets (cc − cp − ι) / T.
        assert space["c.space0"].token_scale == pytest.approx(0.5)
        assert space["c.space0"].token_offset == pytest.approx(0.5)
        assert space["c.space1"].token_scale == pytest.approx(0.5)
        assert space["c.space1"].token_offset == pytest.approx(0.0)
        assert space["c.space0"].target == "a#0.v1"
        assert space["c.space1"].target == "a#1.v1"


class TestRejection:
    def test_zero_rate_profile_is_rejected(self):
        with pytest.raises(ModelError, match="must not all be zero"):
            Buffer(
                name="c",
                source="a",
                target="b",
                memory="m1",
                production_rates=(0, 0),
            )

    def test_empty_phase_list_is_rejected(self):
        with pytest.raises(ModelError, match="non-empty"):
            Task(name="a", wcet=1.0, processor="p1", phases=())

    def test_rate_length_must_match_phase_count(self):
        graph = TaskGraph(name="mismatch", period=10.0)
        graph.add_task(Task(name="a", wcet=0.0, phases=(1.0, 2.0), processor="p1"))
        graph.add_task(Task(name="b", wcet=1.0, processor="p2"))
        graph.add_buffer(
            Buffer(
                name="c",
                source="a",
                target="b",
                memory="m1",
                production_rates=(1, 1, 1),
            )
        )
        with pytest.raises(ModelError, match="3 entries"):
            build_srdf_specification(graph)

    def test_inconsistent_rates_have_no_repetition_vector(self):
        graph = TaskGraph(name="inconsistent", period=10.0)
        for name in ("a", "b", "c"):
            graph.add_task(Task(name=name, wcet=1.0, processor="p1"))
        graph.add_buffer(Buffer(name="ab", source="a", target="b", memory="m1"))
        graph.add_buffer(Buffer(name="bc", source="b", target="c", memory="m1"))
        graph.add_buffer(
            Buffer(
                name="ac",
                source="a",
                target="c",
                memory="m1",
                production_rates=(2,),
                consumption_rates=(1,),
            )
        )
        with pytest.raises(ModelError, match="inconsistent cyclo-static rates"):
            build_srdf_specification(graph)


class TestHandComputedMcr:
    """Instantiate the two-phase chain and check the exact cycle ratio."""

    def _instantiate(self, capacity: int):
        graph = _two_phase_chain()
        specification = build_srdf_specification(graph)
        return instantiate_srdf(
            specification,
            graph,
            _platform(interval=4.0),
            budgets={"a": 4.0, "b": 4.0},
            capacities={"c": capacity},
        )

    def test_firing_durations_follow_the_phases(self):
        srdf = self._instantiate(capacity=4)
        durations = {actor.name: actor.firing_duration for actor in srdf.actors}
        # Full budgets: v1 actors wait 0; v2 actors run ̺·χ_phase/β.
        assert durations["a#0.v1"] == pytest.approx(0.0)
        assert durations["a#0.v2"] == pytest.approx(1.0)
        assert durations["a#1.v2"] == pytest.approx(2.0)
        assert durations["b.v2"] == pytest.approx(1.0)

    def test_space_tokens_are_fractional_affine_values(self):
        srdf = self._instantiate(capacity=4)
        tokens = {queue.name: queue.tokens for queue in srdf.queues}
        assert tokens["c.space0"] == pytest.approx(2.5)
        assert tokens["c.space1"] == pytest.approx(2.0)
        assert not all(queue.has_integral_tokens for queue in srdf.queues)

    def test_maximum_cycle_ratio_is_the_serial_chain(self):
        # The serialisation chain carries one token past 1.0 + 2.0 time units
        # of execution, so one full iteration of `a` takes 3 time units and
        # no other cycle is slower at capacity 4.
        srdf = self._instantiate(capacity=4)
        assert maximum_cycle_ratio(srdf) == pytest.approx(3.0)
        assert is_period_feasible(srdf, 3.0)
        assert not is_period_feasible(srdf, 2.9)

    def test_tight_capacity_slows_the_iteration(self):
        # With capacity 1 only half an iteration of space exists: the space
        # edge b.v2 → a#0.v1 carries one token for three time units of
        # execution around the cycle.
        srdf = self._instantiate(capacity=1)
        assert maximum_cycle_ratio(srdf) > 3.0
