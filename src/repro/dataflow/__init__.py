"""Single-rate dataflow substrate (Section II-B and II-C of the paper).

Contents:

* :class:`~repro.dataflow.graph.SRDFGraph` — single-rate dataflow graphs.
* :mod:`~repro.dataflow.mcr` — maximum cycle ratio / minimum feasible period.
* :mod:`~repro.dataflow.schedule` — periodic admissible schedules.
* :mod:`~repro.dataflow.simulation` — self-timed (worst-case) execution.
* :mod:`~repro.dataflow.monotonicity` — temporal monotonicity checks.
* :mod:`~repro.dataflow.construction` — the two-actor-per-task construction
  that models budget schedulers (from the paper's reference [10]).
* :mod:`~repro.dataflow.sdf` — multi-rate SDF graphs and their expansion to
  SRDF (the "more dynamic applications" extension the paper names as future
  work).
"""

from repro.dataflow.graph import Actor, Queue, SRDFGraph
from repro.dataflow.construction import (
    ActorRole,
    ActorSpec,
    QueueKind,
    QueueSpec,
    SrdfSpecification,
    build_configuration_specifications,
    build_srdf_specification,
    finish_actor_name,
    instantiate_from_configuration,
    instantiate_srdf,
    start_actor_name,
)
from repro.dataflow.mcr import (
    CycleRatio,
    critical_cycles,
    cycle_ratios,
    is_period_feasible,
    maximum_cycle_ratio,
    minimum_feasible_period,
    throughput,
)
from repro.dataflow.monotonicity import check_monotonicity, speedup_graph
from repro.dataflow.schedule import (
    PeriodicSchedule,
    compute_schedule,
    rate_optimal_schedule,
)
from repro.dataflow.sdf import SDFActor, SDFChannel, SDFGraph
from repro.dataflow.simulation import (
    SimulationTrace,
    measured_period,
    meets_period,
    simulate,
)

__all__ = [
    "Actor",
    "ActorRole",
    "ActorSpec",
    "CycleRatio",
    "PeriodicSchedule",
    "Queue",
    "QueueKind",
    "QueueSpec",
    "SDFActor",
    "SDFChannel",
    "SDFGraph",
    "SRDFGraph",
    "SimulationTrace",
    "SrdfSpecification",
    "build_configuration_specifications",
    "build_srdf_specification",
    "check_monotonicity",
    "compute_schedule",
    "critical_cycles",
    "cycle_ratios",
    "finish_actor_name",
    "instantiate_from_configuration",
    "instantiate_srdf",
    "is_period_feasible",
    "maximum_cycle_ratio",
    "measured_period",
    "meets_period",
    "minimum_feasible_period",
    "rate_optimal_schedule",
    "simulate",
    "speedup_graph",
    "start_actor_name",
    "throughput",
]
