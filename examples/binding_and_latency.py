#!/usr/bin/env python3
"""Automated mapping flow: binding → joint budget/buffer computation → latency.

The paper's conclusion sketches an automated multiprocessor mapping flow in
which the binding of tasks to processors and buffers to memories is computed
together with budgets and buffer sizes.  This example runs that flow on a
software-defined-radio-style job whose tasks are initially all piled onto one
processor:

1. the greedy binder spreads tasks over the platform and buffers over the
   memories,
2. Algorithm 1 computes budgets and buffer capacities for the bound
   configuration, and
3. the analysis layer reports throughput slack and end-to-end latency.

Run with:  python examples/binding_and_latency.py
"""

from __future__ import annotations

from repro import ConfigurationBuilder, ObjectiveWeights
from repro.analysis import analyse_latency, analyse_throughput, render_table
from repro.binding import bind_and_allocate, bind_greedy


def build_configuration():
    """A six-task radio pipeline, initially bound entirely to 'dsp1'."""
    builder = (
        ConfigurationBuilder(name="radio", granularity=1.0)
        .processor("dsp1", replenishment_interval=40.0, scheduling_overhead=1.0)
        .processor("dsp2", replenishment_interval=40.0, scheduling_overhead=1.0)
        .processor("dsp3", replenishment_interval=40.0, scheduling_overhead=1.0)
        .memory("sram1", capacity=20.0)
        .memory("sram2", capacity=20.0)
        .task_graph("rx", period=12.0)
    )
    stages = [
        ("tuner", 1.0),
        ("decimate", 1.5),
        ("equalise", 2.0),
        ("demod", 1.5),
        ("deinterleave", 1.0),
        ("decode", 2.0),
    ]
    for name, wcet in stages:
        builder.task(name, wcet=wcet, processor="dsp1")
    for (src, _), (dst, _) in zip(stages, stages[1:]):
        builder.buffer(f"{src}_{dst}", source=src, target=dst, memory="sram1")
    return builder.build(validate=False)


def main() -> None:
    configuration = build_configuration()

    binding = bind_greedy(configuration)
    print("Greedy binding")
    print(
        render_table(
            [
                {"task": task, "processor": processor}
                for task, processor in sorted(binding.task_bindings.items())
            ]
        )
    )
    print(
        render_table(
            [
                {"processor": name, "minimum-budget load": round(load, 3)}
                for name, load in sorted(binding.processor_load.items())
            ]
        )
    )
    print()

    binding, mapping = bind_and_allocate(
        configuration, weights=ObjectiveWeights.prefer_budgets()
    )
    print("Joint budgets and buffer capacities on the bound configuration")
    print(
        render_table(
            [
                {"task": name, "budget (Mcycles)": budget}
                for name, budget in sorted(mapping.budgets.items())
            ]
        )
    )
    print(
        render_table(
            [
                {"buffer": name, "capacity (containers)": capacity}
                for name, capacity in sorted(mapping.buffer_capacities.items())
            ]
        )
    )
    print()

    throughput = analyse_throughput(mapping)["rx"]
    latency = analyse_latency(mapping)["rx"]
    print(
        f"throughput: minimum period {throughput.minimum_period:.2f} Mcycles "
        f"(requirement {throughput.required_period:.0f}, slack {throughput.slack:.2f})"
    )
    print(
        f"end-to-end latency: {latency.schedule_latency:.1f} Mcycles "
        f"({latency.periods_of_latency:.1f} periods); "
        f"self-timed start-up latency {latency.self_timed_latency:.1f} Mcycles"
    )


if __name__ == "__main__":
    main()
