"""Setuptools entry point.

The project metadata lives in ``pyproject.toml``; this file exists so that
editable installs (``pip install -e .``) work on environments whose
setuptools/pip combination cannot build PEP 660 editable wheels offline
(no ``wheel`` package available).
"""

from setuptools import setup

setup()
