"""Convex optimisation substrate.

This package replaces the commercial cone solver used in the paper (CPLEX)
with a self-contained modelling layer and solvers:

* :class:`~repro.solver.problem.ConeProgram` — the modelling entry point.
* :class:`~repro.solver.expression.Variable` /
  :class:`~repro.solver.expression.AffineExpression` — expression algebra.
* :class:`~repro.solver.constraints.LinearConstraint`,
  :class:`~repro.solver.constraints.HyperbolicConstraint`,
  :class:`~repro.solver.constraints.SecondOrderConeConstraint` — constraint
  families.
* :class:`~repro.solver.barrier.BarrierSolver` — from-scratch log-barrier
  interior-point method (the default backend for cone programs).
* :class:`~repro.solver.parametric.ParametricProblem` /
  :class:`~repro.solver.parametric.SolveSession` — compile-once/solve-many
  parametric re-solve with warm starts between solves.
* scipy-based LP (:mod:`~repro.solver.linprog_backend`) and NLP
  (:mod:`~repro.solver.scipy_backend`) backends.
"""

from repro.solver.constraints import (
    EQUAL,
    GREATER_EQUAL,
    LESS_EQUAL,
    HyperbolicConstraint,
    LinearConstraint,
    SecondOrderConeConstraint,
)
from repro.solver.expression import AffineExpression, Variable, linear_sum
from repro.solver.barrier import BarrierOptions, BarrierSolver
from repro.solver.decomposed import DecomposedOptions, solve_decomposed
from repro.solver.parametric import ParametricProblem, SessionStats, SolveSession
from repro.solver.problem import BlockStructure, CompiledProblem, ConeProgram
from repro.solver.result import Solution, SolverStatus

__all__ = [
    "AffineExpression",
    "BarrierOptions",
    "BarrierSolver",
    "BlockStructure",
    "CompiledProblem",
    "ConeProgram",
    "DecomposedOptions",
    "solve_decomposed",
    "ParametricProblem",
    "SessionStats",
    "SolveSession",
    "EQUAL",
    "GREATER_EQUAL",
    "LESS_EQUAL",
    "HyperbolicConstraint",
    "LinearConstraint",
    "SecondOrderConeConstraint",
    "Solution",
    "SolverStatus",
    "Variable",
    "linear_sum",
]
