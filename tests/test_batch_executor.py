"""Tests of the parallel batch allocation engine.

The determinism guarantees asserted here are the contract of the batch
layer: a campaign produces identical deterministic results with one worker
and with N workers, and a warm cache reproduces a cold run exactly.
"""

from __future__ import annotations

import json

import pytest

from repro.batch import (
    BatchExecutor,
    CampaignItem,
    CampaignSpec,
    ExecutorConfig,
    ResultCache,
    aggregate_results,
    run_campaign,
)
from repro.batch.executor import (
    STATUS_ERROR,
    STATUS_INFEASIBLE,
    STATUS_OK,
    ItemResult,
    _solve_payload,
    resolve_weights,
)
from repro.batch.cache import cache_key
from repro.core import AllocatorOptions, JointAllocator
from repro.taskgraph import serialization
from repro.taskgraph.generators import (
    chain_configuration,
    producer_consumer_configuration,
)


@pytest.fixture
def small_spec():
    return CampaignSpec.from_dict(
        {
            "name": "small",
            "seed": 9,
            "entries": [
                {"generator": "chain", "sweep": {"stages": [2, 3]}},
                {
                    "generator": "random_dag",
                    "params": {
                        "task_count": 6,
                        "processor_count": 6,
                        "max_capacity": 8,
                    },
                    "count": 2,
                },
            ],
        }
    )


class TestSerialExecution:
    def test_matches_direct_allocator(self):
        configuration = producer_consumer_configuration(max_capacity=5)
        items = [CampaignItem(label="pc", configuration=configuration)]
        results = BatchExecutor().run(items)
        assert len(results) == 1
        result = results[0]
        assert result.status == STATUS_OK
        direct = JointAllocator(
            options=AllocatorOptions(run_simulation=False)
        ).allocate(configuration)
        assert result.budgets == direct.budgets
        assert result.buffer_capacities == direct.buffer_capacities

    def test_infeasible_item_is_reported_not_raised(self):
        feasible = producer_consumer_configuration(max_capacity=5)
        infeasible = producer_consumer_configuration(period=2.0, max_capacity=1)
        items = [
            CampaignItem(label="ok", configuration=feasible),
            CampaignItem(label="bad", configuration=infeasible),
        ]
        results = BatchExecutor().run(items)
        assert [result.status for result in results] == [STATUS_OK, STATUS_INFEASIBLE]
        assert results[1].error

    def test_capacity_limits_are_applied(self):
        configuration = producer_consumer_configuration()
        items = [
            CampaignItem(
                label="cap3",
                configuration=configuration,
                capacity_limits={"bab": 3},
            )
        ]
        result = BatchExecutor().run(items)[0]
        assert result.status == STATUS_OK
        assert result.buffer_capacities["bab"] <= 3

    def test_progress_callback_streams_results(self, small_spec):
        seen = []
        BatchExecutor().run(
            small_spec.expand(), progress=lambda index, result: seen.append(index)
        )
        assert sorted(seen) == [0, 1, 2, 3]


class TestFallbackAndErrors:
    def test_unknown_primary_backend_falls_back(self):
        configuration = producer_consumer_configuration(max_capacity=5)
        payload = {
            "label": "pc",
            "key": "k",
            "configuration": serialization.configuration_to_dict(configuration),
            "capacity_limits": None,
            "options": {
                "backend": "bogus-backend",
                "weights": "prefer-budgets",
                "verify": True,
                "run_simulation": False,
                "fallback_backends": ["scipy"],
            },
        }
        result = _solve_payload(payload)
        assert result["status"] == STATUS_OK
        assert result["backend_used"] == "scipy"

    def test_exhausted_fallbacks_become_an_error_result(self):
        configuration = producer_consumer_configuration(max_capacity=5)
        payload = {
            "label": "pc",
            "key": "k",
            "configuration": serialization.configuration_to_dict(configuration),
            "capacity_limits": None,
            "options": {
                "backend": "bogus-backend",
                "weights": "prefer-budgets",
                "verify": True,
                "run_simulation": False,
                "fallback_backends": [],
            },
        }
        result = _solve_payload(payload)
        assert result["status"] == STATUS_ERROR
        assert "bogus-backend" in result["error"]

    def test_unknown_weights_preset_is_an_item_error(self):
        configuration = producer_consumer_configuration(max_capacity=5)
        payload = {
            "label": "pc",
            "key": "k",
            "configuration": serialization.configuration_to_dict(configuration),
            "capacity_limits": None,
            "options": {
                "backend": "auto",
                "weights": "nonsense",
                "verify": True,
                "run_simulation": False,
                "fallback_backends": [],
            },
        }
        result = _solve_payload(payload)
        assert result["status"] == STATUS_ERROR
        assert "nonsense" in result["error"]

    def test_resolve_weights_rejects_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown objective preset"):
            resolve_weights("nope")

    def test_non_finite_item_payload_is_an_item_error_not_a_campaign_abort(self):
        # A non-finite float reaching the cache-key computation (e.g. a
        # 1e999 literal in hand-written campaign JSON) must fail that one
        # item, not the whole run.
        items = [
            CampaignItem(
                label="bad",
                configuration=producer_consumer_configuration(max_capacity=5),
                capacity_limits={"bab": float("inf")},
            ),
            CampaignItem(
                label="good",
                configuration=producer_consumer_configuration(max_capacity=5),
            ),
        ]
        results = BatchExecutor().run(items)
        assert [result.status for result in results] == [STATUS_ERROR, STATUS_OK]
        assert "non-finite" in results[0].error

    def test_errors_are_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        executor = BatchExecutor(
            config=ExecutorConfig(backend="bogus", fallback_backends=()),
            cache=cache,
        )
        items = [
            CampaignItem(
                label="pc",
                configuration=producer_consumer_configuration(max_capacity=5),
            )
        ]
        results = executor.run(items)
        assert results[0].status == STATUS_ERROR
        assert len(cache) == 0


class TestDeterminismAndCache:
    def test_parallel_matches_serial_byte_for_byte(self, small_spec):
        """The same campaign must agree between 1 worker and N workers."""
        items = small_spec.expand()
        serial = BatchExecutor(config=ExecutorConfig(workers=1)).run(items)
        parallel = BatchExecutor(
            config=ExecutorConfig(workers=2, chunk_size=1)
        ).run(items)
        serial_json = json.dumps(
            [result.deterministic_dict() for result in serial], sort_keys=True
        )
        parallel_json = json.dumps(
            [result.deterministic_dict() for result in parallel], sort_keys=True
        )
        assert serial_json == parallel_json
        serial_summary = aggregate_results("small", serial).deterministic_dict()
        parallel_summary = aggregate_results("small", parallel).deterministic_dict()
        assert json.dumps(serial_summary, sort_keys=True) == json.dumps(
            parallel_summary, sort_keys=True
        )

    def test_warm_cache_reproduces_cold_run(self, small_spec, tmp_path):
        """A warm cache must return identical results while solving nothing."""
        cold_results, cold_summary = run_campaign(
            small_spec, cache_dir=tmp_path / "cache"
        )
        warm_results, warm_summary = run_campaign(
            small_spec, cache_dir=tmp_path / "cache"
        )
        assert warm_summary.cache_hits == len(cold_results)
        assert warm_summary.solved == 0
        assert all(result.from_cache for result in warm_results)
        # bit-for-bit identical payloads (including solver timings, which the
        # cache preserves from the cold run)
        assert [result.to_dict() for result in warm_results] == [
            result.to_dict() for result in cold_results
        ]
        assert json.dumps(
            cold_summary.deterministic_dict(), sort_keys=True
        ) == json.dumps(warm_summary.deterministic_dict(), sort_keys=True)

    def test_cache_payload_matches_result(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        executor = BatchExecutor(cache=cache)
        items = [
            CampaignItem(
                label="pc",
                configuration=producer_consumer_configuration(max_capacity=5),
            )
        ]
        result = executor.run(items)[0]
        key = cache_key(
            items[0].configuration_dict(), executor.config.result_options(), None
        )
        assert result.key == key
        assert cache.get(key) == result.to_dict()

    def test_duplicate_keys_solved_once_per_run(self, monkeypatch):
        """Overlapping entries with identical configurations solve once."""
        import repro.batch.executor as executor_module

        calls = []
        original = executor_module._solve_payload

        def counting_solve(payload):
            calls.append(payload["key"])
            return original(payload)

        monkeypatch.setattr(executor_module, "_solve_payload", counting_solve)
        configuration = chain_configuration(stages=3)
        items = [
            CampaignItem(label="first", configuration=configuration),
            CampaignItem(label="second", configuration=configuration),
        ]
        results = BatchExecutor().run(items)
        assert len(calls) == 1
        assert [result.label for result in results] == ["first", "second"]
        assert results[0].budgets == results[1].budgets

    def test_cache_hit_carries_current_label_not_stored_label(self, tmp_path):
        """A cache entry written under one campaign's label must not leak
        into another campaign's reports."""
        configuration = producer_consumer_configuration(max_capacity=5)
        cache = ResultCache(tmp_path / "cache")
        BatchExecutor(cache=cache).run(
            [CampaignItem(label="campaign-a/0", configuration=configuration)]
        )
        warm = BatchExecutor(cache=cache).run(
            [CampaignItem(label="campaign-b/7", configuration=configuration)]
        )
        assert warm[0].from_cache is True
        assert warm[0].label == "campaign-b/7"

    def test_inline_timeout_warns_that_it_is_not_enforced(self, small_spec):
        with pytest.warns(RuntimeWarning, match="not enforced in inline mode"):
            BatchExecutor(config=ExecutorConfig(workers=1, timeout=5.0)).run(
                small_spec.expand()
            )

    def test_no_cache_always_solves(self, small_spec):
        first, summary1 = run_campaign(small_spec, use_cache=False)
        second, summary2 = run_campaign(small_spec, use_cache=False)
        assert summary1.cache_hits == 0 and summary2.cache_hits == 0
        assert [result.deterministic_dict() for result in first] == [
            result.deterministic_dict() for result in second
        ]


def _sleepy_solve_payload(payload):
    """Worker function of the timeout regression test (module level so it
    pickles across the process pool).  Items labelled ``stuck`` sleep far
    beyond the configured per-item timeout; everything else solves normally."""
    import time as _time

    if payload["label"] == "stuck":
        _time.sleep(60.0)
    return _solve_payload(payload)


class TestTimeoutPoolRecovery:
    def test_stuck_worker_is_replaced_and_does_not_block_the_run(self, monkeypatch):
        """After an un-cancellable per-item timeout the stuck worker used to
        keep occupying a pool slot (and ``shutdown(wait=True)`` blocked on it
        for the payload's full duration); the pool must be recreated instead,
        so later windows run at full parallelism and the run ends promptly."""
        import multiprocessing
        import time

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("the slow-payload monkeypatch needs fork inheritance")
        import repro.batch.executor as executor_module

        monkeypatch.setattr(executor_module, "_solve_payload", _sleepy_solve_payload)
        items = [
            CampaignItem(label="stuck", configuration=chain_configuration(stages=2)),
            CampaignItem(label="a", configuration=chain_configuration(stages=3)),
            CampaignItem(label="b", configuration=chain_configuration(stages=4)),
            CampaignItem(label="c", configuration=chain_configuration(stages=5)),
        ]
        executor = BatchExecutor(
            config=ExecutorConfig(workers=2, chunk_size=1, timeout=1.0)
        )
        start = time.perf_counter()
        with pytest.warns(RuntimeWarning, match="recreating the process pool"):
            results = executor.run(items)
        elapsed = time.perf_counter() - start

        assert [result.label for result in results] == ["stuck", "a", "b", "c"]
        assert results[0].status == "timeout"
        assert all(result.status == STATUS_OK for result in results[1:])
        # The 60 s payload must neither serialise the later windows nor block
        # the pool shutdown; a generous bound still catches both regressions.
        assert elapsed < 30.0, f"run took {elapsed:.1f} s behind a stuck worker"


class TestChaos:
    """Seeded fault plans against the executor: structured outcomes only."""

    def _items(self):
        return [
            CampaignItem(label="boom", configuration=chain_configuration(stages=2)),
            CampaignItem(label="a", configuration=chain_configuration(stages=3)),
            CampaignItem(label="b", configuration=chain_configuration(stages=4)),
        ]

    def test_injected_worker_crash_is_contained(self):
        """A payload that kills its worker (twice — the plan is re-armed per
        attempt) becomes one error item; the pool is recreated and every
        other item still solves."""
        import multiprocessing

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("worker-crash injection relies on fork workers")
        from repro.reliability import FaultPlan

        plan = FaultPlan(seed=1).arm("executor.worker", "exit", match="boom")
        executor = BatchExecutor(
            config=ExecutorConfig(
                workers=2, chunk_size=1, fault_plan=plan.to_dict()
            )
        )
        try:
            with pytest.warns(RuntimeWarning, match="recreating the process pool"):
                results = executor.run(self._items())
        finally:
            executor.close()
        assert [result.label for result in results] == ["boom", "a", "b"]
        assert results[0].status == STATUS_ERROR
        assert "died while solving this item (twice)" in results[0].error
        assert all(result.status == STATUS_OK for result in results[1:])
        assert executor.metrics.counter("batch.worker_crashes").value >= 2

    @pytest.mark.parametrize("action", ["oserror", "linalg-error", "raise"])
    def test_any_raising_action_at_a_chaos_site_is_an_item_error(self, action):
        """Every raising action the framework supports — not just the two
        solver-shaped ones — must fail the one item, never the campaign."""
        from repro.reliability import FaultPlan

        plan = FaultPlan(seed=7).arm("executor.worker", action, match="boom")
        results = BatchExecutor(
            config=ExecutorConfig(workers=1, fault_plan=plan.to_dict())
        ).run(self._items())
        assert [result.status for result in results] == [
            STATUS_ERROR,
            STATUS_OK,
            STATUS_OK,
        ]
        assert results[0].error

    def test_raising_action_in_pool_mode_does_not_abort_the_campaign(self):
        """An armed oserror in a pool worker propagates as a per-item error
        result, not an exception out of run()."""
        import multiprocessing

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("fault-plan transport test relies on fork workers")
        from repro.reliability import FaultPlan

        plan = FaultPlan(seed=8).arm("executor.worker", "oserror", match="boom")
        executor = BatchExecutor(
            config=ExecutorConfig(
                workers=2, chunk_size=1, fault_plan=plan.to_dict()
            )
        )
        try:
            results = executor.run(self._items())
        finally:
            executor.close()
        assert [result.status for result in results] == [
            STATUS_ERROR,
            STATUS_OK,
            STATUS_OK,
        ]
        assert "OSError" in results[0].error

    def test_injected_inline_fault_is_an_item_error(self):
        """In inline mode a raising fault at the worker site is a terminal
        item error, never a campaign abort."""
        from repro.reliability import FaultPlan

        plan = FaultPlan(seed=2).arm(
            "executor.worker", "numerical-error", match="boom"
        )
        results = BatchExecutor(
            config=ExecutorConfig(workers=1, fault_plan=plan.to_dict())
        ).run(self._items())
        assert [result.status for result in results] == [
            STATUS_ERROR,
            STATUS_OK,
            STATUS_OK,
        ]
        assert "NumericalError" in results[0].error

    def test_injected_faults_are_never_cached(self, tmp_path):
        from repro.reliability import FaultPlan

        cache = ResultCache(tmp_path / "cache")
        plan = FaultPlan(seed=3).arm(
            "executor.worker", "numerical-error", match="boom"
        )
        BatchExecutor(
            config=ExecutorConfig(workers=1, fault_plan=plan.to_dict()),
            cache=cache,
        ).run(self._items())
        # Only the two healthy items were stored; a rerun without the plan
        # re-solves the faulted item and gets a clean result.
        assert len(cache) == 2
        results = BatchExecutor(
            config=ExecutorConfig(workers=1), cache=cache
        ).run(self._items())
        assert all(result.status == STATUS_OK for result in results)

    def test_interrupt_mid_run_drains_the_pool(self):
        """A KeyboardInterrupt between yielded results must shut the pool
        down (no orphaned workers) and propagate."""
        import multiprocessing

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("pool-teardown check relies on fork workers")
        executor = BatchExecutor(config=ExecutorConfig(workers=2, chunk_size=1))
        iterator = executor.run_iter(self._items())
        next(iterator)
        pool = executor._pool
        assert pool is not None
        with pytest.raises(KeyboardInterrupt):
            iterator.throw(KeyboardInterrupt)
        assert executor._pool is None
        executor.close()


class TestItemResult:
    def test_round_trip(self):
        result = ItemResult(
            label="x",
            key="k",
            status=STATUS_OK,
            budgets={"wa": 18.0},
            buffer_capacities={"bab": 4},
            relaxed_budgets={"wa": 17.5},
            relaxed_capacities={"bab": 3.4},
            objective_value=17.5,
            backend_used="barrier",
            solve_seconds=0.01,
        )
        clone = ItemResult.from_dict(result.to_dict(), from_cache=True)
        assert clone.from_cache is True
        assert clone.to_dict() == result.to_dict()
        assert clone.total_budget == pytest.approx(18.0)
        assert clone.total_capacity == 4

    def test_row_shape(self):
        result = ItemResult(label="x", key="k", status=STATUS_INFEASIBLE)
        row = result.row()
        assert row["status"] == STATUS_INFEASIBLE
        assert row["total_budget"] is None

    def test_run_returns_results_in_campaign_order(self):
        configurations = [
            chain_configuration(stages=stages) for stages in (4, 2, 3)
        ]
        items = [
            CampaignItem(label=f"chain{index}", configuration=configuration)
            for index, configuration in enumerate(configurations)
        ]
        results = BatchExecutor(
            config=ExecutorConfig(workers=2, chunk_size=1)
        ).run(items)
        assert [result.label for result in results] == ["chain0", "chain1", "chain2"]
