"""Tests for the synthetic configuration generators."""

from __future__ import annotations

import pytest

from repro.exceptions import ModelError
from repro.taskgraph.generators import (
    chain_configuration,
    csdf_chain_configuration,
    fork_join_configuration,
    heterogeneous_random_configuration,
    multi_job_configuration,
    producer_consumer_configuration,
    random_dag_configuration,
    ring_configuration,
)


class TestProducerConsumer:
    def test_matches_paper_parameters(self):
        config = producer_consumer_configuration()
        config.validate()
        graph = config.task_graph("T1")
        assert graph.period == 10.0
        assert graph.task("wa").wcet == 1.0
        assert config.platform.processor("p1").replenishment_interval == 40.0
        assert graph.task("wa").processor != graph.task("wb").processor
        buffer = graph.buffer("bab")
        assert buffer.initial_tokens == 0
        assert buffer.container_size == 1.0

    def test_capacity_bound_is_applied(self):
        config = producer_consumer_configuration(max_capacity=3)
        assert config.task_graph("T1").buffer("bab").max_capacity == 3

    def test_weights_prefer_budgets(self):
        config = producer_consumer_configuration()
        graph = config.task_graph("T1")
        assert graph.task("wa").budget_weight > graph.buffer("bab").capacity_weight


class TestChain:
    def test_three_stage_chain_matches_paper(self):
        config = chain_configuration(stages=3)
        config.validate()
        graph = config.task_graph("chain3")
        assert sorted(graph.task_names) == ["wa", "wb", "wc"]
        assert sorted(graph.buffer_names) == ["bab", "bbc"]
        assert graph.buffer("bab").source == "wa"
        assert graph.buffer("bbc").target == "wc"
        # One processor per stage.
        assert len(set(t.processor for t in graph.tasks)) == 3

    def test_longer_chains(self):
        config = chain_configuration(stages=6)
        config.validate()
        assert len(config.task_graph("chain6").buffers) == 5

    def test_rejects_single_stage(self):
        with pytest.raises(ModelError):
            chain_configuration(stages=1)


class TestForkJoin:
    def test_structure(self):
        config = fork_join_configuration(branches=3)
        config.validate()
        graph = config.task_graphs[0]
        assert len(graph.tasks) == 5
        assert len(graph.buffers) == 6
        assert graph.successors("split") == ["worker1", "worker2", "worker3"]
        assert graph.predecessors("merge") == ["worker1", "worker2", "worker3"]

    def test_rejects_zero_branches(self):
        with pytest.raises(ModelError):
            fork_join_configuration(branches=0)


class TestRing:
    def test_cyclic_structure_with_initial_tokens(self):
        config = ring_configuration(stages=4, initial_tokens=2)
        config.validate()
        graph = config.task_graphs[0]
        assert len(graph.buffers) == 4
        assert sum(b.initial_tokens for b in graph.buffers) == 2
        assert graph.undirected_cycles_exist()

    def test_requires_initial_tokens(self):
        with pytest.raises(ModelError):
            ring_configuration(stages=3, initial_tokens=0)


class TestRandomDag:
    def test_deterministic_for_seed(self):
        a = random_dag_configuration(task_count=10, processor_count=3, seed=7)
        b = random_dag_configuration(task_count=10, processor_count=3, seed=7)
        assert [t.wcet for _, t in a.all_tasks()] == [t.wcet for _, t in b.all_tasks()]
        assert [bf.name for _, bf in a.all_buffers()] == [bf.name for _, bf in b.all_buffers()]

    def test_different_seeds_differ(self):
        a = random_dag_configuration(task_count=10, processor_count=3, seed=1)
        b = random_dag_configuration(task_count=10, processor_count=3, seed=2)
        assert [round(t.wcet, 6) for _, t in a.all_tasks()] != [
            round(t.wcet, 6) for _, t in b.all_tasks()
        ]

    def test_validates_and_is_connected(self):
        config = random_dag_configuration(task_count=12, processor_count=4, seed=3)
        config.validate()
        assert config.task_graphs[0].is_connected()

    def test_acyclic(self):
        import networkx as nx

        config = random_dag_configuration(task_count=12, processor_count=4, seed=5)
        graph = nx.DiGraph(config.task_graphs[0].to_networkx())
        assert nx.is_directed_acyclic_graph(graph)

    def test_rejects_tiny_inputs(self):
        with pytest.raises(ModelError):
            random_dag_configuration(task_count=1, processor_count=1)


class TestMultiJob:
    def test_jobs_share_processors(self):
        config = multi_job_configuration(job_count=3, stages_per_job=2)
        config.validate()
        assert len(config.task_graphs) == 3
        # Stage 0 of every job is bound to p1.
        stage0_processors = {
            graph.task(f"{graph.name}_s0").processor for graph in config.task_graphs
        }
        assert stage0_processors == {"p1"}

    def test_rejects_invalid_counts(self):
        with pytest.raises(ModelError):
            multi_job_configuration(job_count=0)
        with pytest.raises(ModelError):
            multi_job_configuration(stages_per_job=1)


class TestCsdfChain:
    def test_validates_and_is_cyclo_static(self):
        config = csdf_chain_configuration(stages=3, phases_per_task=2)
        config.validate()
        graph = config.task_graphs[0]
        assert graph.is_cyclo_static
        assert all(task.phase_count == 2 for task in graph.tasks)
        assert graph.repetitions() == {task.name: 1 for task in graph.tasks}

    def test_phases_sum_to_the_nominal_wcet(self):
        config = csdf_chain_configuration(wcet=2.0, phases_per_task=3)
        for _, task in config.all_tasks():
            assert sum(task.phases) == pytest.approx(2.0)

    def test_single_phase_degenerates_to_plain_chain(self):
        config = csdf_chain_configuration(phases_per_task=1)
        assert not config.task_graphs[0].is_cyclo_static

    def test_rejects_invalid_counts(self):
        with pytest.raises(ModelError):
            csdf_chain_configuration(stages=1)
        with pytest.raises(ModelError):
            csdf_chain_configuration(phases_per_task=0)


class TestHeterogeneousRandom:
    def test_validates_on_the_typed_platform(self):
        config = heterogeneous_random_configuration(task_count=6, seed=2)
        config.validate()
        types = {p.proc_type for p in config.platform}
        assert types == {"big", "little"}
        assert config.platform.processor("big1").speed == 2.0
        assert config.platform.processor("little1").speed == 1.0

    def test_every_task_has_a_cycle_table(self):
        config = heterogeneous_random_configuration(task_count=6, seed=2)
        for _, task in config.all_tasks():
            table = dict(task.cycles_by_type)
            assert set(table) == {"big", "little"}
            assert table["little"] > table["big"]

    def test_is_deterministic_per_seed(self):
        first = heterogeneous_random_configuration(task_count=8, seed=5)
        second = heterogeneous_random_configuration(task_count=8, seed=5)
        assert [t for _, t in first.all_tasks()] == [t for _, t in second.all_tasks()]
        other = heterogeneous_random_configuration(task_count=8, seed=6)
        assert [t for _, t in first.all_tasks()] != [t for _, t in other.all_tasks()]

    def test_dvfs_levels_are_applied(self):
        config = heterogeneous_random_configuration(
            task_count=4, seed=0, dvfs_levels=(1.0, 2.0)
        )
        assert config.platform.processor("big1").dvfs_levels == (1.0, 2.0)
        assert config.platform.processor("little1").dvfs_levels is None

    def test_rejects_tiny_inputs(self):
        with pytest.raises(ModelError):
            heterogeneous_random_configuration(task_count=1)
        with pytest.raises(ModelError):
            heterogeneous_random_configuration(big_count=0)
