"""Temporal monotonicity utilities.

SRDF graphs are temporally monotonic (Section II-B.2 of the paper): reducing a
firing duration, or adding initial tokens, can never make any token arrive
later in the self-timed execution.  This property is what makes the paper's
conservative approximations sound:

* replacing ``1/β`` by ``λ ≥ 1/β`` only *increases* firing durations, so a
  schedule for the approximated graph is valid for the real one;
* rounding budgets up only *decreases* firing durations;
* rounding token counts (buffer capacities) up only *adds* tokens.

The functions here make these comparisons executable so that the test-suite
can verify the property on arbitrary graphs (property-based tests) and so that
the allocator can assert it on the graphs it produces.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.exceptions import AnalysisError
from repro.dataflow.graph import SRDFGraph
from repro.dataflow.simulation import SimulationTrace, simulate


def speedup_graph(
    graph: SRDFGraph,
    duration_scale: float = 1.0,
    extra_tokens: Optional[Mapping[str, int]] = None,
    duration_overrides: Optional[Mapping[str, float]] = None,
) -> SRDFGraph:
    """Return a graph that is element-wise "at least as fast" as the input.

    ``duration_scale`` must be in ``(0, 1]`` and scales every firing duration;
    ``extra_tokens`` adds tokens to selected queues; ``duration_overrides``
    replaces individual durations (each must not exceed the original).
    """
    if not 0.0 < duration_scale <= 1.0:
        raise AnalysisError("duration_scale must be in (0, 1]")
    durations: Dict[str, float] = {
        actor.name: actor.firing_duration * duration_scale for actor in graph.actors
    }
    if duration_overrides:
        for name, value in duration_overrides.items():
            if value > graph.firing_duration(name) + 1e-12:
                raise AnalysisError(
                    f"override for actor {name!r} increases its firing duration; "
                    f"the result would not be a speed-up"
                )
            durations[name] = float(value)
    tokens: Dict[str, int] = {}
    if extra_tokens:
        for queue_name, extra in extra_tokens.items():
            if extra < 0:
                raise AnalysisError("extra_tokens must be non-negative")
            tokens[queue_name] = graph.tokens(queue_name) + int(extra)
    return graph.with_updates(firing_durations=durations, tokens=tokens, name=f"{graph.name}-faster")


def check_monotonicity(
    slower: SRDFGraph,
    faster: SRDFGraph,
    iterations: int = 30,
    tolerance: float = 1e-9,
) -> bool:
    """Verify that ``faster`` never starts any firing later than ``slower``.

    ``faster`` must have the same actors as ``slower`` with firing durations
    that are no larger, and queues with token counts that are no smaller.
    Returns ``True`` when the self-timed traces confirm monotonicity.
    """
    _check_dominance(slower, faster)
    slow_trace = simulate(slower, iterations=iterations)
    fast_trace = simulate(faster, iterations=iterations)
    return fast_trace.is_no_later_than(slow_trace, tolerance=tolerance)


def _check_dominance(slower: SRDFGraph, faster: SRDFGraph) -> None:
    slower_actors = {actor.name: actor for actor in slower.actors}
    faster_actors = {actor.name: actor for actor in faster.actors}
    if set(slower_actors) != set(faster_actors):
        raise AnalysisError("graphs must have identical actor sets")
    for name, actor in faster_actors.items():
        if actor.firing_duration > slower_actors[name].firing_duration + 1e-12:
            raise AnalysisError(
                f"actor {name!r} is slower in the supposedly faster graph"
            )
    slower_queues = {queue.name: queue for queue in slower.queues}
    faster_queues = {queue.name: queue for queue in faster.queues}
    if set(slower_queues) != set(faster_queues):
        raise AnalysisError("graphs must have identical queue sets")
    for name, queue in faster_queues.items():
        if queue.tokens < slower_queues[name].tokens:
            raise AnalysisError(
                f"queue {name!r} has fewer tokens in the supposedly faster graph"
            )


def compare_traces(trace_fast: SimulationTrace, trace_slow: SimulationTrace) -> Dict[str, float]:
    """Per-actor maximum start-time advance of the fast trace over the slow one."""
    result: Dict[str, float] = {}
    iterations = min(trace_fast.iterations, trace_slow.iterations)
    for name in trace_fast.actor_names():
        fast = trace_fast.start_times[name]
        slow = trace_slow.start_times[name]
        result[name] = max(slow[k] - fast[k] for k in range(iterations))
    return result
