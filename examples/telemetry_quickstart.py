"""Telemetry quickstart: trace a solve, read the metrics, export JSONL.

The :mod:`repro.obs` layer is off by default and costs nothing while off.
This example switches it on for exactly one workload allocation using
:func:`repro.obs.capture`, then shows the three ways to consume what came
out:

* the **span tree** — the nested phase timings of the solve (compile,
  phase-I, every barrier rung, rounding, verification);
* the **profile** — the same spans aggregated by name, with call counts and
  self-time shares;
* the **metrics registry** — counters and histograms the solver and
  admission layers record (Newton iterations, rung counts, warm-start hits).

Everything is also exported to a schema-versioned JSONL file that outlives
the process — the same format ``repro-map batch --telemetry-log`` writes —
and re-read and validated record by record.

Run it::

    python examples/telemetry_quickstart.py [output.jsonl]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import obs
from repro.core import AllocatorOptions, JointAllocator
from repro.obs.export import (
    JsonlSink,
    read_records,
    render_metrics,
    render_profile,
    render_trace_tree,
    validate_record,
)
from repro.taskgraph import Workload
from repro.taskgraph.generators import chain_configuration, random_dag_configuration


def build_workload() -> Workload:
    """Two applications sharing one platform: a chain and a random DAG."""
    chain = chain_configuration(stages=3)
    dag = random_dag_configuration(task_count=5, processor_count=3, seed=7)
    workload = Workload(chain.platform, name="quickstart")
    workload.add_application("chain", chain)
    workload.add_application("dag", dag)
    return workload


def main() -> None:
    # An explicit .jsonl argument wins; otherwise (including when the test
    # harness runs this file with its own argv) export to a temp directory.
    if len(sys.argv) > 1 and sys.argv[1].endswith(".jsonl"):
        log_path = Path(sys.argv[1])
    else:
        log_path = Path(tempfile.mkdtemp(prefix="repro-obs-")) / "telemetry.jsonl"
    workload = build_workload()
    allocator = JointAllocator(options=AllocatorOptions(run_simulation=False))

    # Telemetry is scoped: enabled inside the ``with``, off again after it,
    # and the allocation result is bit-identical either way.
    with JsonlSink(log_path) as sink:
        with obs.capture(sink=sink) as captured:
            mapped = allocator.allocate_workload(workload)

    print(
        f"allocated {len(mapped.applications)} applications, "
        f"objective={mapped.objective_value:.4f}"
    )

    print("\n== span tree ==")
    print(render_trace_tree(captured.spans))

    print("\n== profile ==")
    print(render_profile(captured.spans))

    print("\n== metrics ==")
    print(render_metrics(captured.metrics))

    records = read_records(log_path)
    for record in records:
        validate_record(record)
    kinds = sorted({record["kind"] for record in records})
    print(f"\n{len(records)} valid records ({', '.join(kinds)}) in {log_path}")


if __name__ == "__main__":
    main()
