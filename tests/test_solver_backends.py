"""Tests for the LP backend, the scipy backend and the auto dispatcher."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import FormulationError
from repro.solver import ConeProgram, SolverStatus
from repro.solver.backends import solve_compiled
from repro.solver.linprog_backend import solve_with_linprog
from repro.solver.scipy_backend import solve_with_scipy


def _knapsack_like_program(c1: float, c2: float, limit: float) -> ConeProgram:
    program = ConeProgram()
    x = program.add_variable("x", lower=0.0, upper=10.0)
    y = program.add_variable("y", lower=0.0, upper=10.0)
    program.add_less_equal(x + y, limit)
    program.minimize(c1 * x + c2 * y)
    return program


class TestLinprogBackend:
    def test_simple_lp(self):
        program = _knapsack_like_program(-1.0, -2.0, 6.0)
        solution = solve_with_linprog(program.compile())
        assert solution.is_optimal
        assert solution.objective == pytest.approx(-12.0, abs=1e-8)
        assert solution.backend == "linprog"

    def test_rejects_cone_constraints(self):
        program = ConeProgram()
        x = program.add_variable("x", lower=0.1)
        y = program.add_variable("y", lower=0.1)
        program.add_hyperbolic(x, y, 1.0)
        with pytest.raises(FormulationError):
            solve_with_linprog(program.compile())

    def test_unbounded_lp(self):
        program = ConeProgram()
        x = program.add_variable("x", upper=5.0)
        program.minimize(x)
        solution = solve_with_linprog(program.compile())
        assert solution.status is SolverStatus.UNBOUNDED

    def test_equality_constraints(self):
        program = ConeProgram()
        x = program.add_variable("x", lower=0.0, upper=10.0)
        y = program.add_variable("y", lower=0.0, upper=10.0)
        program.add_equality(x + y, 3.0)
        program.minimize(x - y)
        solution = solve_with_linprog(program.compile())
        assert solution.is_optimal
        assert solution.value(y) == pytest.approx(3.0, abs=1e-8)

    def test_empty_problem(self):
        program = ConeProgram()
        solution = solve_with_linprog(program.compile())
        assert solution.is_optimal


class TestScipyBackend:
    def test_hyperbolic_problem(self):
        program = ConeProgram()
        x = program.add_variable("x", lower=1e-3, upper=100.0)
        y = program.add_variable("y", lower=1e-3, upper=100.0)
        program.add_hyperbolic(x, y, bound=4.0)
        program.minimize(x + y)
        solution = solve_with_scipy(program.compile())
        assert solution.is_optimal
        assert solution.objective == pytest.approx(4.0, rel=1e-3)
        assert solution.backend == "scipy"

    def test_reports_infeasibility(self):
        program = ConeProgram()
        x = program.add_variable("x", lower=0.0, upper=1.0)
        y = program.add_variable("y", lower=0.0, upper=1.0)
        program.add_hyperbolic(x, y, bound=9.0)
        program.minimize(x + y)
        solution = solve_with_scipy(program.compile())
        assert solution.status in (SolverStatus.INFEASIBLE, SolverStatus.NUMERICAL_ERROR)
        assert not solution.is_optimal

    def test_empty_problem(self):
        program = ConeProgram()
        solution = solve_with_scipy(program.compile())
        assert solution.is_optimal


class TestAutoDispatch:
    def test_pure_lp_uses_linprog(self):
        program = _knapsack_like_program(1.0, 1.0, 4.0)
        solution = program.solve(backend="auto")
        assert solution.is_optimal
        assert solution.backend == "linprog"

    def test_cone_program_uses_barrier(self):
        program = ConeProgram()
        x = program.add_variable("x", lower=0.1, upper=50.0)
        y = program.add_variable("y", lower=0.1, upper=50.0)
        program.add_hyperbolic(x, y, bound=4.0)
        program.minimize(x + y)
        solution = program.solve(backend="auto")
        assert solution.is_optimal
        assert solution.backend == "barrier"

    def test_unknown_backend_rejected(self):
        program = _knapsack_like_program(1.0, 1.0, 4.0)
        with pytest.raises(FormulationError):
            solve_compiled(program.compile(), backend="gurobi")

    def test_solve_records_time(self):
        program = _knapsack_like_program(1.0, 1.0, 4.0)
        solution = program.solve()
        assert solution.solve_time >= 0.0


@settings(max_examples=25, deadline=None)
@given(
    c=st.lists(st.floats(min_value=-5, max_value=5, allow_nan=False), min_size=3, max_size=3),
    rows=st.lists(
        st.lists(st.floats(min_value=0.1, max_value=3, allow_nan=False), min_size=3, max_size=3),
        min_size=1,
        max_size=4,
    ),
    rhs=st.lists(st.floats(min_value=1.0, max_value=20.0, allow_nan=False), min_size=4, max_size=4),
)
def test_barrier_matches_linprog_on_random_bounded_lps(c, rows, rhs):
    """Property: on random bounded LPs the barrier optimum matches HiGHS.

    All variables are box-constrained to [0, 5] and all constraint
    coefficients are positive with positive right-hand sides, so the origin is
    feasible and the LP is bounded.
    """
    program = ConeProgram()
    variables = [program.add_variable(f"x{i}", lower=0.0, upper=5.0) for i in range(3)]
    for i, row in enumerate(rows):
        expr = sum(coeff * var for coeff, var in zip(row, variables))
        program.add_less_equal(expr, rhs[i])
    program.minimize(sum(ci * vi for ci, vi in zip(c, variables)))

    lp = program.solve(backend="linprog")
    barrier = program.solve(backend="barrier")
    assert lp.is_optimal and barrier.is_optimal
    scale = max(1.0, abs(lp.objective))
    assert barrier.objective == pytest.approx(lp.objective, abs=2e-3 * scale)


@settings(max_examples=20, deadline=None)
@given(
    a=st.floats(min_value=0.2, max_value=10.0, allow_nan=False),
    b=st.floats(min_value=0.2, max_value=10.0, allow_nan=False),
    w=st.floats(min_value=0.5, max_value=25.0, allow_nan=False),
)
def test_barrier_hyperbolic_matches_closed_form(a, b, w):
    """Property: min a·x + b·y s.t. x·y ≥ w has value 2·sqrt(a·b·w)."""
    import math

    program = ConeProgram()
    x = program.add_variable("x", lower=1e-4, upper=1e4)
    y = program.add_variable("y", lower=1e-4, upper=1e4)
    program.add_hyperbolic(x, y, bound=w)
    program.minimize(a * x + b * y)
    solution = program.solve(backend="barrier")
    assert solution.is_optimal
    assert solution.objective == pytest.approx(2.0 * math.sqrt(a * b * w), rel=2e-3)
