"""Tests for the analysis helpers: throughput, feasibility screening, sensitivity, reports."""

from __future__ import annotations


import pytest

from repro.analysis import (
    analyse_throughput,
    budget_reduction_curve,
    diminishing_returns,
    marginal_capacity_values,
    render_markdown_table,
    render_series,
    render_table,
    screen_configuration,
    utilisation_summary,
)
from repro.core import AllocatorOptions, ObjectiveWeights, TradeoffExplorer, allocate
from repro.taskgraph import ConfigurationBuilder, MappedConfiguration
from repro.taskgraph.generators import chain_configuration, producer_consumer_configuration


class TestThroughputAnalysis:
    def test_reports_slack_and_critical_cycles(self):
        config = producer_consumer_configuration(max_capacity=5)
        mapped = allocate(config, weights=ObjectiveWeights.prefer_budgets())
        reports = analyse_throughput(mapped)
        report = reports["T1"]
        assert report.meets_requirement
        assert report.minimum_period <= 10.0 + 1e-9
        assert report.slack >= -1e-9
        assert report.throughput == pytest.approx(1.0 / report.minimum_period)
        # At the budget-minimising optimum the producer-consumer cycle through
        # the buffer is critical, so the buffer shows up as a candidate.
        assert "bab" in report.critical_buffer_names()

    def test_failing_mapping_is_reported(self):
        config = producer_consumer_configuration()
        mapped = MappedConfiguration(
            configuration=config,
            budgets={"wa": 4.0, "wb": 4.0},
            buffer_capacities={"bab": 1},
        )
        report = analyse_throughput(mapped)["T1"]
        assert not report.meets_requirement
        assert report.minimum_period > 10.0

    def test_utilisation_summary(self):
        config = producer_consumer_configuration(max_capacity=5)
        mapped = allocate(config, weights=ObjectiveWeights.prefer_budgets())
        utilisation = utilisation_summary(mapped)
        assert set(utilisation) == {"p1", "p2"}
        assert all(0.0 < value <= 1.0 for value in utilisation.values())


class TestFeasibilityScreen:
    def test_accepts_feasible_configuration(self):
        screen = screen_configuration(producer_consumer_configuration())
        assert screen.may_be_feasible
        assert screen.processor_load["p1"] == pytest.approx((4.0 + 1.0) / 40.0)

    def test_detects_overloaded_processor(self):
        builder = (
            ConfigurationBuilder(name="hot", granularity=1.0)
            .processor("p1", replenishment_interval=40.0)
            .processor("p2", replenishment_interval=40.0)
            .memory("m1")
            .task_graph("job", period=10.0)
        )
        builder.task("a", wcet=5.0, processor="p1")
        builder.task("b", wcet=5.0, processor="p1")
        builder.task("c", wcet=1.0, processor="p2")
        builder.buffer("ab", source="a", target="b", memory="m1")
        builder.buffer("bc", source="b", target="c", memory="m1")
        config = builder.build(validate=False)
        screen = screen_configuration(config)
        assert not screen.may_be_feasible
        assert any("p1" in violation for violation in screen.violations)

    def test_detects_memory_pressure(self):
        config = producer_consumer_configuration(memory_capacity=1.5)
        screen = screen_configuration(config)
        assert not screen.may_be_feasible
        assert "m1" in screen.memory_load


class TestSensitivity:
    @pytest.fixture(scope="class")
    def curve(self):
        explorer = TradeoffExplorer(
            allocator_options=AllocatorOptions(run_simulation=False)
        )
        return explorer.sweep_capacity_limit(
            producer_consumer_configuration(), range(1, 11)
        )

    def test_budget_reduction_curve(self, curve):
        steps = budget_reduction_curve(curve, task_name="wa")
        assert len(steps) == 9
        assert steps[0].capacity_limit == 2
        assert steps[0].reduction == pytest.approx(4.829, abs=0.05)
        assert steps[-1].reduction < 1.0

    def test_diminishing_returns_predicate(self, curve):
        steps = budget_reduction_curve(curve, task_name="wa")
        assert diminishing_returns(steps)
        assert not diminishing_returns(list(reversed(steps)))

    def test_marginal_capacity_values(self):
        config = chain_configuration(stages=3)
        values = marginal_capacity_values(
            config, {"bab": 2, "bbc": 2}, weights=ObjectiveWeights.prefer_budgets()
        )
        assert {v.buffer_name for v in values} == {"bab", "bbc"}
        # Adding a container to either buffer saves budget at this point.
        assert all(v.saving > 0.0 for v in values)
        # The two buffers are symmetric in the chain, so the savings match.
        savings = sorted(v.saving for v in values)
        assert savings[0] == pytest.approx(savings[1], rel=1e-2)


class TestReportRendering:
    def test_render_table_alignment_and_values(self):
        rows = [
            {"capacity": 1, "budget": 36.1078, "feasible": True},
            {"capacity": 2, "budget": None, "feasible": False},
        ]
        text = render_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert "capacity" in lines[0]
        assert "36.11" in text
        assert "-" in lines[-1]
        assert "no" in lines[-1]

    def test_render_table_empty(self):
        assert render_table([]) == "(no rows)"

    def test_render_markdown_table(self):
        rows = [{"a": 1, "b": 2.5}]
        text = render_markdown_table(rows)
        assert text.splitlines()[0] == "| a | b |"
        assert "| 1 | 2.5 |" in text

    def test_render_series(self):
        text = render_series("d", [1, 2], {"budget": [36.1, 31.3]})
        assert "36.1" in text and "31.3" in text
        assert text.splitlines()[0].startswith("d")

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = render_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert "c" in header and "a" in header and "b" not in header
