"""Joint budget and buffer-size allocation.

:class:`JointAllocator` is the top-level entry point of the library: it takes
a :class:`~repro.taskgraph.configuration.Configuration`, builds and solves the
SOCP of Algorithm 1, rounds the relaxed solution conservatively, verifies the
result with independent dataflow analyses, and returns a
:class:`~repro.taskgraph.configuration.MappedConfiguration`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.exceptions import (
    AllocationError,
    InfeasibleProblemError,
    NumericalError,
    UnboundedProblemError,
)
from repro.core.formulation import SocpFormulation
from repro.core.objective import ObjectiveWeights
from repro.core.rounding import round_budgets, round_capacities
from repro.core.validation import VerificationReport, verify_mapping
from repro.solver.result import Solution, SolverStatus
from repro.taskgraph.configuration import Configuration, MappedConfiguration


@dataclass
class AllocatorOptions:
    """Options of the joint allocator."""

    backend: str = "auto"              #: solver backend passed to the cone program
    verify: bool = True                #: run independent verification after rounding
    run_simulation: bool = True        #: include self-timed simulation in verification
    simulate_iterations: int = 60      #: iterations of the validation simulation
    raise_on_verification_failure: bool = True


class JointAllocator:
    """Simultaneous computation of budgets and buffer capacities."""

    def __init__(
        self,
        weights: Optional[ObjectiveWeights] = None,
        options: Optional[AllocatorOptions] = None,
    ) -> None:
        self.weights = weights or ObjectiveWeights.prefer_budgets()
        self.options = options or AllocatorOptions()

    def allocate(
        self,
        configuration: Configuration,
        capacity_limits: Optional[Mapping[str, int]] = None,
        budget_limits: Optional[Mapping[str, float]] = None,
        weights: Optional[ObjectiveWeights] = None,
    ) -> MappedConfiguration:
        """Compute a mapped configuration that satisfies every throughput constraint.

        Parameters
        ----------
        configuration:
            The input configuration (validated before solving).
        capacity_limits, budget_limits:
            Optional additional upper bounds (per buffer / per task) used by
            trade-off sweeps.
        weights:
            Objective weighting; overrides the allocator-level default.

        Raises
        ------
        InfeasibleProblemError
            When no budgets/capacities satisfy the constraints.
        AllocationError
            When the rounded mapping unexpectedly fails verification.
        """
        configuration.validate()
        formulation = SocpFormulation(
            configuration,
            weights=weights or self.weights,
            capacity_limits=capacity_limits,
            budget_limits=budget_limits,
        )
        solution = formulation.solve(backend=self.options.backend)
        self._check_status(solution, configuration)

        relaxed_budgets = formulation.extract_budgets(solution)
        relaxed_capacities = formulation.extract_capacities(solution)
        budgets = round_budgets(relaxed_budgets, configuration.granularity)
        capacities = round_capacities(relaxed_capacities)

        mapped = MappedConfiguration(
            configuration=configuration,
            budgets=budgets,
            buffer_capacities=capacities,
            relaxed_budgets=relaxed_budgets,
            relaxed_capacities=relaxed_capacities,
            objective_value=solution.objective,
            solver_info={
                "backend": solution.backend,
                "status": solution.status.value,
                "iterations": solution.iterations,
                "solve_time": solution.solve_time,
            },
        )

        if self.options.verify:
            report = self.verify(mapped)
            mapped.solver_info["verification"] = report.summary()
            if not report.is_valid and self.options.raise_on_verification_failure:
                raise AllocationError(
                    "the rounded mapping failed verification:\n" + report.summary()
                )
        return mapped

    def verify(self, mapped: MappedConfiguration) -> VerificationReport:
        """Verify a mapped configuration with independent dataflow analyses."""
        return verify_mapping(
            mapped,
            simulate_iterations=self.options.simulate_iterations,
            run_simulation=self.options.run_simulation,
        )

    @staticmethod
    def _check_status(solution: Solution, configuration: Configuration) -> None:
        if solution.status is SolverStatus.OPTIMAL:
            return
        if solution.status is SolverStatus.INFEASIBLE:
            raise InfeasibleProblemError(
                f"no budgets and buffer capacities satisfy the throughput "
                f"requirements of configuration {configuration.name!r} within its "
                f"processor and memory capacities"
            )
        if solution.status is SolverStatus.UNBOUNDED:
            raise UnboundedProblemError(
                f"the optimisation problem for configuration {configuration.name!r} "
                f"is unbounded; check the objective weights"
            )
        raise NumericalError(
            f"the solver failed on configuration {configuration.name!r}: "
            f"{solution.status.value} ({solution.message})"
        )


def allocate(
    configuration: Configuration,
    weights: Optional[ObjectiveWeights] = None,
    backend: str = "auto",
    verify: bool = True,
) -> MappedConfiguration:
    """Functional convenience wrapper around :class:`JointAllocator`."""
    options = AllocatorOptions(backend=backend, verify=verify)
    allocator = JointAllocator(weights=weights, options=options)
    return allocator.allocate(configuration)
