"""Sensitivity of the required budgets to buffer capacities.

Figure 2(b) of the paper plots the *derivative* of the budget reduction: how
many Mcycles of budget one extra container buys.  This module computes that
derivative from a trade-off curve and also provides per-buffer marginal-value
analysis (which buffer is most worth enlarging next) for general graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.exceptions import InfeasibleProblemError
from repro.core.allocator import AllocatorOptions, JointAllocator
from repro.core.objective import ObjectiveWeights
from repro.core.tradeoff import TradeoffCurve
from repro.taskgraph.configuration import Configuration


@dataclass
class BudgetReductionStep:
    """Budget saved by going from ``capacity_limit − 1`` to ``capacity_limit``."""

    capacity_limit: int
    reduction: float


def budget_reduction_curve(
    curve: TradeoffCurve, task_name: Optional[str] = None, relaxed: bool = True
) -> List[BudgetReductionStep]:
    """The per-container budget reduction along a capacity sweep (Fig. 2(b))."""
    feasible = curve.feasible_points()
    steps: List[BudgetReductionStep] = []
    reductions = curve.budget_reductions(task_name=task_name, relaxed=relaxed)
    for point, reduction in zip(feasible[1:], reductions):
        steps.append(
            BudgetReductionStep(capacity_limit=point.capacity_limit, reduction=reduction)
        )
    return steps


def diminishing_returns(steps: Sequence[BudgetReductionStep], tolerance: float = 1e-6) -> bool:
    """True when the budget reduction per container is non-increasing."""
    values = [step.reduction for step in steps]
    return all(earlier >= later - tolerance for earlier, later in zip(values, values[1:]))


@dataclass
class MarginalCapacityValue:
    """Budget saved by adding one container to a single buffer."""

    buffer_name: str
    baseline_total_budget: float
    enlarged_total_budget: float

    @property
    def saving(self) -> float:
        return self.baseline_total_budget - self.enlarged_total_budget


def marginal_capacity_values(
    configuration: Configuration,
    capacities: Dict[str, int],
    weights: Optional[ObjectiveWeights] = None,
) -> List[MarginalCapacityValue]:
    """Budget saved by giving each buffer (one at a time) one extra container.

    Useful for guiding manual design-space exploration on general graphs where
    the uniform sweep of the paper's experiments is too coarse.
    """
    allocator = JointAllocator(
        weights=weights or ObjectiveWeights.prefer_budgets(),
        options=AllocatorOptions(run_simulation=False),
    )
    baseline = allocator.allocate(configuration, capacity_limits=capacities)
    baseline_total = sum(baseline.relaxed_budgets.values())

    results: List[MarginalCapacityValue] = []
    for buffer_name in sorted(capacities):
        enlarged = dict(capacities)
        enlarged[buffer_name] = capacities[buffer_name] + 1
        try:
            mapped = allocator.allocate(configuration, capacity_limits=enlarged)
            enlarged_total = sum(mapped.relaxed_budgets.values())
        except InfeasibleProblemError:
            enlarged_total = baseline_total
        results.append(
            MarginalCapacityValue(
                buffer_name=buffer_name,
                baseline_total_budget=baseline_total,
                enlarged_total_budget=enlarged_total,
            )
        )
    return results
