"""Run-time admission control over a shared platform.

The DATE 2010 setting is a *run-time* one: applications start and stop on a
shared MPSoC, and budgets and buffer capacities must be re-allocated on the
fly.  This module answers the run-time question — *can this application be
admitted alongside the running workload?* — on top of the incremental
session-editing API of :class:`~repro.core.allocator.WorkloadSession`:

* :class:`AdmissionController` holds the running workload and one
  compile-once session.  :meth:`AdmissionController.admit` tentatively adds
  the candidate, re-running the combined-load screens and the joint solve;
  an admitted application stays (with a fresh :class:`~repro.taskgraph.
  workload.MappedWorkload` for the whole platform), a rejected one is rolled
  back and the running applications keep their allocation.  Rejections carry
  a *structured reason*: the fast closed-form load screens
  (:data:`STAGE_LOAD_SCREEN`) or solver-proven infeasibility of the joint
  program (:data:`STAGE_SOLVER`).
* :class:`AdmissionTrace` is a replayable sequence of arrival/departure
  events over one shared platform (JSON-serialisable, so traces can be
  versioned next to their results and driven through batch campaigns);
  :func:`random_trace` generates seeded traces, and :func:`replay_trace`
  drives a controller through a trace and returns the per-event
  :class:`TraceRecord` timeline.

Because every event is an *incremental* session edit, unchanged applications
keep their formulation blocks, their per-block equality eliminations and
their share of the previous optimum — re-admission after the tenth arrival
costs one new block, not ten.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.exceptions import (
    AllocationError,
    BindingError,
    FaultInjected,
    InfeasibleModelError,
    InfeasibleProblemError,
    ModelError,
    NumericalError,
)
from repro.obs.metrics import get_registry as _metrics_registry
from repro.obs.trace import span as obs_span
from repro.core.allocator import AllocatorOptions, JointAllocator, WorkloadSession
from repro.core.objective import ObjectiveWeights
from repro.taskgraph.configuration import Configuration
from repro.taskgraph.platform import Platform
from repro.taskgraph.workload import MappedWorkload, Workload

FORMAT_VERSION = 1

#: Rejection stages (the structured reason of an :class:`AdmissionDecision`).
STAGE_ADMITTED = "admitted"
STAGE_LOAD_SCREEN = "load-screen"   #: closed-form combined-load screens
STAGE_SOLVER = "solver"             #: joint cone program proven infeasible
#: The solver *failed* (as opposed to proving infeasibility) and kept failing
#: through the bounded retry and the from-scratch fallback.  The candidate is
#: rolled back and the running workload keeps its allocation — a structured
#: outcome, never a crash and never a silently wrong admit.
STAGE_ERROR = "error"

#: Anytime fast-path verdicts (delivered *before* the exact solve confirms).
VERDICT_ADMIT = "admit"
VERDICT_REJECT = "reject"
VERDICT_UNCERTAIN = "uncertain"

#: Anytime verdict stages (how the fast path reached its verdict).
STAGE_ANYTIME_EMPTY = "anytime-empty"       #: nothing running, no warm state
STAGE_ANYTIME_FIT = "anytime-fit"           #: candidate fits the residual slack
STAGE_ANYTIME_PRICE = "anytime-price"       #: priced-out on a tight shared row
STAGE_ANYTIME_UNCERTAIN = "anytime-uncertain"


@dataclass
class AdmissionDecision:
    """The structured outcome of one admission attempt.

    ``stage`` distinguishes *why* a rejection happened: the closed-form
    combined-load screens (:data:`STAGE_LOAD_SCREEN` — the candidate cannot
    fit no matter what the solver does) or solver-proven infeasibility of the
    joint program (:data:`STAGE_SOLVER`).  ``mapped`` carries the platform's
    fresh allocation when the application was admitted.

    ``verdict`` / ``verdict_stage`` record the *anytime fast path*: a cheap
    admit/reject prediction from the running allocation's residual slack and
    warm shared-capacity prices, delivered before the exact solve ran (see
    :meth:`AdmissionController.anytime_verdict`).  The final ``admitted``
    flag always comes from the exact solve; the verdict is the answer a
    caller could have acted on while the confirmation was still running.
    """

    application: str
    admitted: bool
    stage: str
    reason: Optional[str] = None
    mapped: Optional[MappedWorkload] = None
    verdict: Optional[str] = None
    verdict_stage: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "application": self.application,
            "admitted": self.admitted,
            "stage": self.stage,
            "reason": self.reason,
            "verdict": self.verdict,
            "verdict_stage": self.verdict_stage,
        }


class AdmissionController:
    """Run-time admission control over one shared platform.

    The controller owns the running :class:`~repro.taskgraph.workload.
    Workload` and a single compile-once :class:`~repro.core.allocator.
    WorkloadSession`; arrivals and departures edit the session incrementally,
    so unchanged applications keep their formulation blocks, eliminations and
    warm-start values across every event.
    """

    def __init__(
        self,
        platform: Platform,
        allocator: Optional[JointAllocator] = None,
        weights: Optional[ObjectiveWeights] = None,
        name: str = "running",
        workload: Optional[Workload] = None,
        retry_policy: Optional[object] = None,
    ) -> None:
        """Open a controller over ``platform``, empty or pre-loaded.

        ``workload`` optionally seeds the controller with an already-running
        workload: its applications are taken over as admitted in **one**
        joint solve (instead of re-answering one admission question per
        application), which is what ``repro-map admit`` does with the
        workload JSON it is given.  Raises
        :class:`~repro.exceptions.InfeasibleProblemError` (or the validation
        errors of :meth:`Workload.validate`) when the seeded workload is not
        allocatable — a running workload must be feasible to ask admission
        questions against.

        ``retry_policy`` bounds the degradation ladder applied when a joint
        solve *fails* (a numerical blow-up, not proven infeasibility): the
        failed solve is retried cold up to the policy's attempts, then falls
        back to one from-scratch joint solve, and only when that fails too
        does :meth:`admit` return a :data:`STAGE_ERROR` decision with the
        running workload untouched.  Defaults to
        :class:`repro.reliability.retry.RetryPolicy` ``(attempts=2)``.
        """
        if retry_policy is None:
            from repro.reliability.retry import RetryPolicy

            retry_policy = RetryPolicy(attempts=2)
        self.retry_policy = retry_policy
        self.platform = platform
        # Admission decisions are made per event at run time: keep the
        # analytical verification but skip the (slow) self-timed simulation
        # unless the caller supplies their own allocator.
        self.allocator = allocator or JointAllocator(
            weights=weights, options=AllocatorOptions(run_simulation=False)
        )
        self.mapped: Optional[MappedWorkload] = None
        self._session: Optional[WorkloadSession] = None
        self._stats: Optional[object] = None
        if workload is None:
            self.workload = Workload(platform, name=name)
            return
        if workload.platform is not platform:
            raise ModelError(
                f"the seed workload {workload.name!r} lives on platform "
                f"{workload.platform.name!r}, not on the controller's "
                f"platform {platform.name!r}"
            )
        self.workload = workload
        if len(workload):
            self._session = self.allocator.workload_session(workload)
            self._stats = self._session.stats
            self.mapped = self._session.allocate()

    # -- state ------------------------------------------------------------------
    @property
    def running(self) -> List[str]:
        """Names of the currently admitted applications."""
        return self.workload.application_names

    @property
    def session_stats(self):
        """Aggregate solve statistics across every admission event so far."""
        return self._stats

    # -- events -----------------------------------------------------------------
    def admit(self, name: str, configuration: Configuration) -> AdmissionDecision:
        """Attempt to admit one application alongside the running workload.

        On success the application is committed and the returned decision
        carries the fresh joint allocation; on rejection the running workload
        (and its session state) is left exactly as it was.

        Before the exact (incremental joint) solve runs, the *anytime fast
        path* produces a verdict from the warm state of the running
        allocation (:meth:`anytime_verdict`); it is recorded on the decision
        together with its stage, and the agreement with the exact outcome is
        published to the metrics registry.
        """
        with obs_span("admit", application=name) as admit_span:
            verdict, verdict_stage = self.anytime_verdict(name, configuration)
            decision = self._admit(name, configuration)
            decision.verdict = verdict
            decision.verdict_stage = verdict_stage
            admit_span.set(
                admitted=decision.admitted,
                stage=decision.stage,
                verdict=verdict,
                verdict_stage=verdict_stage,
            )
        self._record_decision(decision, admit_span.seconds)
        return decision

    def anytime_verdict(
        self, name: str, configuration: Configuration
    ) -> Tuple[str, str]:
        """Fast admit/reject prediction before the exact solve confirms.

        The anytime fast path answers the admission question from the warm
        state left behind by the previous joint solve, without touching the
        running session:

        1. The committed allocation's *residual slack* on every shared
           capacity row is computed (``capacity − committed usage``).
        2. The candidate is solved **standalone** against those residuals:
           its own single-application cone program with the shared
           ``processor[...]`` / ``memory[...]`` rows tightened by the
           committed usage.  Feasibility of that small program proves the
           joint program feasible (the running applications keep their
           committed allocation untouched), so the verdict is
           :data:`VERDICT_ADMIT` (:data:`STAGE_ANYTIME_FIT`).
        3. When the candidate does *not* fit the residuals, the warm
           shared-capacity **prices** — ``1/(t_final · slack)`` per row from
           the previous solve's final barrier rung, the decomposed solver's
           price vector — arbitrate: if every row the candidate is short on
           is priced tight (the running workload is already pressed against
           it, so the joint solve has no slack to reclaim), the verdict is
           :data:`VERDICT_REJECT` (:data:`STAGE_ANYTIME_PRICE`); otherwise
           the fast path abstains with :data:`VERDICT_UNCERTAIN`.

        An admit verdict is exact (a feasible joint point is exhibited); a
        reject verdict is a price-guided prediction that the exact solve
        confirms.  With nothing running there is no warm state and the
        verdict is :data:`VERDICT_UNCERTAIN` (:data:`STAGE_ANYTIME_EMPTY`).
        """
        if self.mapped is None or self._session is None:
            return (VERDICT_UNCERTAIN, STAGE_ANYTIME_EMPTY)
        with obs_span("anytime-verdict", application=name) as verdict_span:
            try:
                verdict, stage = self._residual_verdict(configuration)
            except Exception:  # noqa: BLE001 - the fast path never blocks admit
                verdict, stage = (VERDICT_UNCERTAIN, STAGE_ANYTIME_UNCERTAIN)
            verdict_span.set(verdict=verdict, stage=stage)
        registry = _metrics_registry()
        if registry.enabled:
            registry.counter(f"admission.anytime.{verdict}").inc()
        return (verdict, stage)

    def _residual_verdict(self, configuration: Configuration) -> Tuple[str, str]:
        """The standalone-against-residuals solve behind :meth:`anytime_verdict`."""
        from repro.core.formulation import SocpFormulation
        from repro.solver.backends import solve_compiled
        from repro.solver.result import SolverStatus

        committed = self._committed_usage()
        formulation = SocpFormulation(configuration, weights=self.allocator.weights)
        program = formulation.build()
        compiled = program.compile()
        shortfall_rows = []
        for index, row_name in enumerate(compiled.inequality_names):
            used = committed.get(row_name)
            if used is None:
                continue
            compiled.h[index] -= used
            if compiled.h[index] < 0.0:
                shortfall_rows.append(row_name)
        solution = solve_compiled(
            compiled,
            backend="barrier",
            initial_point=formulation.initial_point(),
        )
        if solution.is_optimal:
            return (VERDICT_ADMIT, STAGE_ANYTIME_FIT)
        if solution.status is not SolverStatus.INFEASIBLE:
            return (VERDICT_UNCERTAIN, STAGE_ANYTIME_UNCERTAIN)
        priced = self._shared_prices()
        if priced is None:
            return (VERDICT_UNCERTAIN, STAGE_ANYTIME_UNCERTAIN)
        prices, tight_price = priced
        # The candidate does not fit the residual slack.  The joint solve can
        # still admit it by shifting running applications away from the rows
        # the candidate needs — unless those rows are priced tight, i.e. the
        # running workload is already pressed against them.
        candidate_rows = set(compiled.inequality_names) & set(committed)
        contended = shortfall_rows or sorted(candidate_rows)
        if contended and all(
            prices.get(row, 0.0) >= tight_price for row in contended
        ):
            return (VERDICT_REJECT, STAGE_ANYTIME_PRICE)
        return (VERDICT_UNCERTAIN, STAGE_ANYTIME_UNCERTAIN)

    def _committed_usage(self) -> Dict[str, float]:
        """Committed usage of every shared capacity row, keyed by row name.

        Uses the joint program's own row arithmetic: a task charges its
        *relaxed* budget plus one granule of rounding slack (the constant the
        shared processor row carries per task, cf. Constraint (9)), so the
        residual left for a candidate is exactly what the joint row has to
        give.  Memories charge the rounded (committed) storage.
        """
        usage: Dict[str, float] = {}
        for processor_name in self.platform.processors:
            usage[f"processor[{processor_name}]"] = 0.0
        for application in self.mapped.applications.values():
            configuration = application.configuration
            for graph in configuration.task_graphs:
                for task in graph.tasks:
                    row = f"processor[{task.processor}]"
                    usage[row] += (
                        application.relaxed_budgets[task.name]
                        + configuration.granularity
                    )
        for memory_name, memory in self.platform.memories.items():
            if memory.is_bounded:
                usage[f"memory[{memory_name}]"] = self.mapped.total_storage(
                    memory_name
                )
        return usage

    def _shared_prices(self) -> Optional[Tuple[Dict[str, float], float]]:
        """Warm shared-capacity prices from the previous joint solve.

        At the final barrier rung ``t`` the multiplier of an inequality row
        with slack ``s`` is ``1/(t·s)`` — the price vector the decomposed
        solver coordinates on.  Returns the per-row prices (scaled by each
        row's capacity, so they are comparable across rows) together with the
        *tight-price* threshold: the price of a reference row holding 1%
        relative slack.  A row priced at or above it sits essentially on its
        capacity at the committed optimum.
        """
        stats = (self.mapped.solver_info or {}).get("solve_stats", {})
        final_barrier = stats.get("final_barrier")
        if not final_barrier:
            return None
        committed = self._committed_usage()
        prices: Dict[str, float] = {}
        for processor_name, processor in self.platform.processors.items():
            row = f"processor[{processor_name}]"
            capacity = processor.replenishment_interval
            slack = capacity - processor.scheduling_overhead - committed[row]
            prices[row] = self._row_price(capacity, slack, float(final_barrier))
        for memory_name, memory in self.platform.memories.items():
            if not memory.is_bounded:
                continue
            row = f"memory[{memory_name}]"
            slack = memory.capacity - committed[row]
            prices[row] = self._row_price(
                float(memory.capacity), slack, float(final_barrier)
            )
        tight_price = 100.0 / float(final_barrier)
        return (prices, tight_price)

    @staticmethod
    def _row_price(capacity: float, slack: float, final_barrier: float) -> float:
        if slack <= 0.0:
            return float("inf")
        return max(capacity, 1.0) / (final_barrier * slack)

    #: Solver failures worth retrying: transient numerical breakdowns (and
    #: the injected faults that stand in for them under chaos testing).
    #: Definite verdicts — infeasibility, unboundedness — are *not* here: a
    #: deterministic answer must never be re-asked.
    _RETRYABLE = (NumericalError, FaultInjected, FloatingPointError, ArithmeticError)

    def _resilient_allocate(self, session: WorkloadSession) -> MappedWorkload:
        """``session.allocate()`` hardened by the degradation ladder.

        Retryable solver failures trigger up to ``retry_policy.attempts``
        tries (the warm state is dropped before each retry — a poisoned warm
        start is the most likely transient cause), then one from-scratch
        joint solve of the same workload (fresh formulation, cold start, the
        backend dispatcher's own dense fallback chain included).  Whatever
        that raises propagates to the caller, which turns it into a
        structured outcome.  Ladder steps are counted as
        ``reliability.retries`` / ``reliability.fallbacks``.
        """
        import numpy as np

        from repro.reliability.faults import maybe_fail

        retryable = self._RETRYABLE + (np.linalg.LinAlgError,)
        registry = _metrics_registry()

        def attempt() -> MappedWorkload:
            maybe_fail("admission.solve")
            return session.allocate()

        def on_retry(attempt_number: int, error: BaseException) -> None:
            # Cold retry: drop the (possibly poisoned) warm state first.
            session._session.reset()
            if registry.enabled:
                registry.counter("reliability.retries").inc()

        try:
            return self.retry_policy.run(
                attempt, retryable=retryable, on_retry=on_retry
            )
        except retryable:
            if registry.enabled:
                registry.counter("reliability.fallbacks").inc()
            session._session.reset()
            maybe_fail("admission.solve", label="fallback")
            return self.allocator.allocate_workload(self.workload)

    def _admit(self, name: str, configuration: Configuration) -> AdmissionDecision:
        if self._session is None:
            return self._admit_first(name, configuration)
        try:
            self._session.add_application(name, configuration)
        except InfeasibleModelError as error:
            return AdmissionDecision(name, False, STAGE_LOAD_SCREEN, reason=str(error))
        except (BindingError, ModelError) as error:
            # Structural impossibilities (unknown processors/memories,
            # duplicate or malformed names) are definite load-screen verdicts
            # too — the solver could never change them.
            return AdmissionDecision(name, False, STAGE_LOAD_SCREEN, reason=str(error))
        try:
            mapped = self._resilient_allocate(self._session)
        except (InfeasibleProblemError, AllocationError) as error:
            self._session.remove_application(name)
            return AdmissionDecision(name, False, STAGE_SOLVER, reason=str(error))
        except Exception as error:  # noqa: BLE001 - ladder exhausted
            # The solver failed (it did not prove anything) and the retry and
            # fallback rungs failed too: a structured error verdict, with the
            # candidate rolled back and the running allocation untouched.
            self._session.remove_application(name)
            return AdmissionDecision(
                name,
                False,
                STAGE_ERROR,
                reason=f"{type(error).__name__}: {error}",
            )
        except BaseException:
            # KeyboardInterrupt / SystemExit propagate — but never with the
            # candidate left inside the running workload.
            self._session.remove_application(name)
            raise
        self.mapped = mapped
        return AdmissionDecision(name, True, STAGE_ADMITTED, mapped=mapped)

    def _admit_first(self, name: str, configuration: Configuration) -> AdmissionDecision:
        """Admission of the first application opens the session."""
        try:
            self.workload.add_application(name, configuration)
        except (BindingError, ModelError) as error:
            return AdmissionDecision(name, False, STAGE_LOAD_SCREEN, reason=str(error))
        try:
            self.workload.validate()
        except InfeasibleModelError as error:
            self.workload.remove_application(name)
            return AdmissionDecision(name, False, STAGE_LOAD_SCREEN, reason=str(error))
        try:
            session = self.allocator.workload_session(self.workload)
            if self._stats is not None:
                # Keep one aggregate across empty-platform gaps: the new
                # session continues the predecessor's statistics.
                session._adopt_stats(self._stats)
            mapped = self._resilient_allocate(session)
        except (InfeasibleProblemError, AllocationError) as error:
            self.workload.remove_application(name)
            return AdmissionDecision(name, False, STAGE_SOLVER, reason=str(error))
        except Exception as error:  # noqa: BLE001 - ladder exhausted
            self.workload.remove_application(name)
            return AdmissionDecision(
                name,
                False,
                STAGE_ERROR,
                reason=f"{type(error).__name__}: {error}",
            )
        except BaseException:
            # Non-verdict failures propagate, with the workload restored.
            self.workload.remove_application(name)
            raise
        self._session = session
        self._stats = session.stats
        self.mapped = mapped
        return AdmissionDecision(name, True, STAGE_ADMITTED, mapped=mapped)

    def depart(self, name: str) -> Optional[MappedWorkload]:
        """Retire one running application and re-allocate the remainder.

        Returns the remaining workload's fresh allocation, or ``None`` when
        the departing application was the last one (the session closes; the
        accumulated statistics stay readable through :attr:`session_stats`).
        """
        if self._session is None:
            raise ModelError(f"no application named {name!r} is running")
        with obs_span("depart", application=name):
            if len(self.workload) == 1:
                self.workload.remove_application(name)
                self._session = None
                self.mapped = None
            else:
                self._session.remove_application(name)
                self.mapped = self._resilient_allocate(self._session)
        registry = _metrics_registry()
        if registry.enabled:
            registry.counter("admission.departures").inc()
            registry.gauge("admission.running").set(len(self.workload))
        return self.mapped

    @classmethod
    def restore(
        cls,
        snapshot: Optional[object],
        journal: object,
        allocator: Optional[JointAllocator] = None,
    ) -> Tuple["AdmissionController", List["TraceRecord"]]:
        """Rebuild a controller from a session snapshot plus its journal.

        ``snapshot`` is a :class:`repro.reliability.snapshot.SessionSnapshot`
        or a path to one (``None`` replays the whole journal from scratch);
        ``journal`` is a path to — or the read contents of — the run's
        durable journal.  Only journal events *after* the snapshot's sequence
        number are re-solved; the restored controller's committed workload
        matches the uninterrupted run within 1e-6.  Returns the controller
        together with the full per-event record timeline (recorded outcomes
        for snapshot-covered events, recomputed ones for the replayed tail).
        """
        from repro.reliability.snapshot import restore_controller

        return restore_controller(journal, snapshot, allocator=allocator)

    def _record_decision(self, decision: AdmissionDecision, seconds: float) -> None:
        """Publish one admission verdict to the metrics registry."""
        registry = _metrics_registry()
        if not registry.enabled:
            return
        if decision.admitted:
            registry.counter("admission.admitted").inc()
        else:
            registry.counter("admission.rejected").inc()
            registry.counter(f"admission.rejected.{decision.stage}").inc()
        registry.histogram("admission.decision_seconds").observe(seconds)
        registry.gauge("admission.running").set(len(self.workload))


# -- traces ------------------------------------------------------------------------
ACTION_ARRIVE = "arrive"
ACTION_DEPART = "depart"


@dataclass(frozen=True)
class TraceEvent:
    """One arrival or departure of an admission trace."""

    action: str
    application: str
    configuration: Optional[Configuration] = None

    def __post_init__(self) -> None:
        if self.action not in (ACTION_ARRIVE, ACTION_DEPART):
            raise ModelError(
                f"unknown trace action {self.action!r}; expected "
                f"{ACTION_ARRIVE!r} or {ACTION_DEPART!r}"
            )
        if self.action == ACTION_ARRIVE and self.configuration is None:
            raise ModelError(
                f"arrival of {self.application!r} needs a configuration"
            )


@dataclass
class AdmissionTrace:
    """A replayable arrival/departure event sequence over one shared platform."""

    platform: Platform
    events: List[TraceEvent] = field(default_factory=list)
    name: str = "trace"

    def arrive(self, application: str, configuration: Configuration) -> "AdmissionTrace":
        self.events.append(TraceEvent(ACTION_ARRIVE, application, configuration))
        return self

    def depart(self, application: str) -> "AdmissionTrace":
        self.events.append(TraceEvent(ACTION_DEPART, application))
        return self

    def __len__(self) -> int:
        return len(self.events)


@dataclass
class TraceRecord:
    """The outcome of one replayed trace event."""

    index: int
    action: str
    application: str
    status: str                     #: admitted / rejected / departed / ignored
    stage: Optional[str] = None     #: rejection stage for rejected arrivals
    reason: Optional[str] = None
    objective_value: Optional[float] = None   #: platform objective after the event
    running: List[str] = field(default_factory=list)
    verdict: Optional[str] = None           #: anytime fast-path verdict (arrivals)
    verdict_stage: Optional[str] = None     #: how the fast path decided

    def as_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "action": self.action,
            "application": self.application,
            "status": self.status,
            "stage": self.stage,
            "reason": self.reason,
            "objective_value": self.objective_value,
            "running": list(self.running),
            "verdict": self.verdict,
            "verdict_stage": self.verdict_stage,
        }


#: Replay record statuses.
STATUS_ADMITTED = "admitted"
STATUS_REJECTED = "rejected"
STATUS_DEPARTED = "departed"
STATUS_IGNORED = "ignored"   #: departure of an application that is not running
STATUS_ERROR = "error"       #: arrival ending in a :data:`STAGE_ERROR` decision


@dataclass
class TraceResult:
    """The timeline of one trace replay plus the final platform state."""

    trace: AdmissionTrace
    records: List[TraceRecord]
    final_mapped: Optional[MappedWorkload]
    solver_stats: Dict[str, object] = field(default_factory=dict)

    @property
    def admitted(self) -> int:
        return sum(1 for record in self.records if record.status == STATUS_ADMITTED)

    @property
    def rejected(self) -> int:
        return sum(1 for record in self.records if record.status == STATUS_REJECTED)

    @property
    def departed(self) -> int:
        return sum(1 for record in self.records if record.status == STATUS_DEPARTED)

    def rows(self) -> List[Dict[str, object]]:
        """One table row per event (for the CLI and reports)."""
        return [
            {
                "event": record.index,
                "action": record.action,
                "application": record.application,
                "status": record.status,
                "stage": record.stage or "",
                "verdict": record.verdict or "",
                "running": len(record.running),
                "objective": (
                    None
                    if record.objective_value is None
                    else round(record.objective_value, 4)
                ),
            }
            for record in self.records
        ]


def apply_trace_event(
    controller: AdmissionController, index: int, event: TraceEvent
) -> TraceRecord:
    """Apply one trace event to a controller and record its outcome.

    The single definition of the event-to-record mapping, shared by
    :func:`replay_trace` and the durable replay of
    :mod:`repro.reliability.snapshot` — both paths must produce identical
    records for the kill-and-restore equivalence contract to be checkable.
    A departure of an application that is not running is recorded as
    ``ignored`` rather than raising — traces may legitimately contain
    departures of applications that were rejected on arrival.
    """
    if event.action == ACTION_ARRIVE:
        decision = controller.admit(event.application, event.configuration)
        if decision.admitted:
            status, stage = STATUS_ADMITTED, None
        elif decision.stage == STAGE_ERROR:
            status, stage = STATUS_ERROR, decision.stage
        else:
            status, stage = STATUS_REJECTED, decision.stage
        return TraceRecord(
            index=index,
            action=event.action,
            application=event.application,
            status=status,
            stage=stage,
            reason=decision.reason,
            verdict=decision.verdict,
            verdict_stage=decision.verdict_stage,
            objective_value=(
                None
                if controller.mapped is None
                else controller.mapped.objective_value
            ),
            running=controller.running,
        )
    if event.application not in controller.running:
        return TraceRecord(
            index=index,
            action=event.action,
            application=event.application,
            status=STATUS_IGNORED,
            reason="application is not running",
            objective_value=(
                None
                if controller.mapped is None
                else controller.mapped.objective_value
            ),
            running=controller.running,
        )
    mapped = controller.depart(event.application)
    return TraceRecord(
        index=index,
        action=event.action,
        application=event.application,
        status=STATUS_DEPARTED,
        objective_value=None if mapped is None else mapped.objective_value,
        running=controller.running,
    )


def replay_trace(
    trace: AdmissionTrace,
    allocator: Optional[JointAllocator] = None,
    controller: Optional[AdmissionController] = None,
) -> TraceResult:
    """Drive an :class:`AdmissionController` through a trace, event by event.

    Every event is an incremental session edit; the result records each
    event's verdict (with the structured rejection stage), the running set
    and the platform objective after the event.  A departure of an
    application that is not running is recorded as ``ignored`` rather than
    aborting the replay — traces may legitimately contain departures of
    applications that were rejected on arrival.
    """
    controller = controller or AdmissionController(trace.platform, allocator=allocator)
    records: List[TraceRecord] = []
    for index, event in enumerate(trace.events):
        records.append(apply_trace_event(controller, index, event))
    stats = controller.session_stats
    return TraceResult(
        trace=trace,
        records=records,
        final_mapped=controller.mapped,
        solver_stats=dict(stats.as_dict()) if stats is not None else {},
    )


# -- (de)serialisation -------------------------------------------------------------
def trace_to_dict(trace: AdmissionTrace) -> Dict[str, object]:
    from repro.taskgraph import serialization

    events: List[Dict[str, object]] = []
    for event in trace.events:
        data: Dict[str, object] = {
            "action": event.action,
            "application": event.application,
        }
        if event.configuration is not None:
            data["configuration"] = serialization.configuration_to_dict(
                event.configuration
            )
        events.append(data)
    return {
        "format_version": FORMAT_VERSION,
        "name": trace.name,
        "platform": serialization.platform_to_dict(trace.platform),
        "events": events,
    }


def trace_from_dict(data: Mapping[str, object]) -> AdmissionTrace:
    from repro.taskgraph import serialization

    version = int(data.get("format_version", FORMAT_VERSION))
    if version > FORMAT_VERSION:
        raise ModelError(
            f"trace format version {version} is newer than supported "
            f"version {FORMAT_VERSION}"
        )
    try:
        platform = serialization.platform_from_dict(data["platform"])
    except KeyError:
        raise ModelError("a trace document needs a 'platform' object") from None
    trace = AdmissionTrace(platform=platform, name=str(data.get("name", "trace")))
    for event_data in data.get("events", []):
        try:
            action = str(event_data["action"])
            application = str(event_data["application"])
        except KeyError as error:
            raise ModelError(f"every trace event needs an {error}") from None
        configuration = None
        if event_data.get("configuration") is not None:
            configuration = serialization.configuration_from_dict(
                event_data["configuration"]
            )
        trace.events.append(TraceEvent(action, application, configuration))
    return trace


def trace_to_json(trace: AdmissionTrace, indent: int = 2) -> str:
    return json.dumps(trace_to_dict(trace), indent=indent, sort_keys=True)


def trace_from_json(text: str) -> AdmissionTrace:
    return trace_from_dict(json.loads(text))


def save_trace(trace: AdmissionTrace, path: Union[str, Path]) -> None:
    Path(path).write_text(trace_to_json(trace), encoding="utf-8")


def load_trace(path: Union[str, Path]) -> AdmissionTrace:
    return trace_from_json(Path(path).read_text(encoding="utf-8"))


# -- generators --------------------------------------------------------------------
def random_trace(
    event_count: int = 12,
    task_count: int = 4,
    processor_count: int = 4,
    seed: int = 0,
    period: float = 10.0,
    replenishment_interval: float = 40.0,
    wcet_range: Optional[Tuple[float, float]] = None,
    arrival_bias: float = 0.65,
    concurrency: int = 6,
    granularity: float = 1.0,
    name: Optional[str] = None,
) -> AdmissionTrace:
    """A seeded arrival/departure trace of random-DAG applications.

    Events arrive with probability ``arrival_bias`` (forced while nothing is
    running, suppressed once ``concurrency`` applications are live);
    departures pick a running application uniformly.  The default WCET range
    is scaled down by ``concurrency`` so that mid-trace workloads tend to be
    admissible, with heavier arrivals occasionally rejected — exactly the
    mixture an admission controller is for.
    """
    from repro.taskgraph.generators import random_dag_configuration

    if event_count < 1:
        raise ModelError("a trace needs at least one event")
    if wcet_range is None:
        wcet_range = (0.5 / concurrency, 2.5 / concurrency)
    rng = random.Random(f"trace:{seed}")
    platform: Optional[Platform] = None
    trace: Optional[AdmissionTrace] = None
    running: List[str] = []
    arrivals = 0
    for index in range(event_count):
        arrive = rng.random() < arrival_bias
        if not running:
            arrive = True
        elif len(running) >= concurrency:
            arrive = False
        if arrive:
            configuration = random_dag_configuration(
                task_count=task_count,
                processor_count=processor_count,
                seed=rng.randrange(2**31),
                period=period,
                replenishment_interval=replenishment_interval,
                wcet_range=wcet_range,
                granularity=granularity,
            )
            if trace is None:
                platform = configuration.platform
                trace = AdmissionTrace(
                    platform=platform,
                    name=name or f"random-trace-{event_count}-{seed}",
                )
            application = f"app{arrivals}"
            arrivals += 1
            trace.arrive(application, configuration)
            running.append(application)
        else:
            application = running.pop(rng.randrange(len(running)))
            trace.depart(application)
    return trace
