"""Sparse block-Newton backend tests: CSR compilation, telemetry, edge cases.

The sparse rebuild of the block-Newton core (CSR constraint assembly,
QR-based blockwise elimination, batched/`splu` block factorisations, CSR
merit bundle) must be a pure performance change.  These tests pin:

* the compiled problem carries CSR constraint matrices that agree exactly
  with the lazily densified ``G``/``A`` properties;
* per-solve sparse telemetry (nnz, factorisation/Schur time split, block
  factorisation counts, pieces-cache reuse) lands in the solve stats, the
  metrics registry and the session aggregates;
* the `BlockStructure` edge cases survive the sparse path: a 1-app workload
  keeps the dense special case, a zero-buffer application solves, pinned
  (equality-collapsed) blocks eliminate blockwise, and a failing block
  factorisation falls back to the dense solve with the same optimum;
* `CompiledProblem.elimination_seed` stays bounded over a long add/remove
  admission trace (seeds are consumed by the first elimination, and removed
  applications never transfer).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core import AllocatorOptions, JointAllocator
from repro.core.formulation import WorkloadSocpFormulation
from repro.solver.backends import solve_compiled
from repro.solver.barrier import BarrierSolver, _StructuredWorkspace
from repro.taskgraph import ConfigurationBuilder, Workload
from repro.taskgraph.generators import chain_configuration, random_dag_configuration

scipy_sparse = pytest.importorskip("scipy.sparse")


def make_workload(app_count: int, seed: int = 3) -> Workload:
    applications = [
        random_dag_configuration(
            task_count=4,
            processor_count=4,
            seed=seed + index,
            wcet_range=(0.3, 0.9),
        )
        for index in range(app_count)
    ]
    workload = Workload(applications[0].platform, name=f"sparse-{app_count}")
    for index, application in enumerate(applications):
        workload.add_application(f"app{index}", application)
    return workload


def compiled_workload(app_count: int, seed: int = 3):
    formulation = WorkloadSocpFormulation(make_workload(app_count, seed=seed))
    return formulation.build().compile()


def assert_same_optimum(structured, dense, atol: float = 1e-8) -> None:
    assert structured.is_optimal and dense.is_optimal
    assert structured.objective == pytest.approx(dense.objective, abs=atol)
    point_s, point_d = structured.by_name(), dense.by_name()
    for name, value in point_s.items():
        assert value == pytest.approx(point_d[name], abs=atol), name


class TestSparseCompilation:
    def test_compiled_matrices_are_csr(self):
        compiled = compiled_workload(2)
        assert scipy_sparse.issparse(compiled.G_sparse)
        assert compiled.G_sparse.format == "csr"
        # The dense properties stay available (scipy/linprog backends, tests)
        # and agree entry-for-entry with the sparse originals.
        np.testing.assert_array_equal(compiled.G, compiled.G_sparse.toarray())
        if compiled.A_sparse is not None and compiled.A_sparse.shape[0]:
            np.testing.assert_array_equal(
                compiled.A, compiled.A_sparse.toarray()
            )

    def test_constraint_nnz_counts_both_matrices(self):
        compiled = compiled_workload(2)
        expected = int(np.count_nonzero(compiled.G)) + int(
            np.count_nonzero(compiled.A)
        )
        assert compiled.constraint_nnz == expected
        assert compiled.constraint_nnz > 0

    def test_sparsity_grows_much_slower_than_dense_size(self):
        """The point of the CSR path: nnz is linear in applications while the
        dense matrix area is quadratic."""
        small = compiled_workload(2)
        large = compiled_workload(8)
        dense_growth = (
            large.num_variables * len(large.inequality_names)
        ) / (small.num_variables * len(small.inequality_names))
        nnz_growth = large.constraint_nnz / small.constraint_nnz
        assert nnz_growth < dense_growth / 2


class TestSparseTelemetry:
    def test_solve_stats_carry_sparse_fields(self):
        compiled = compiled_workload(3)
        first = solve_compiled(
            compiled, backend="barrier", options={"structured": True}
        )
        assert first.is_optimal
        assert first.stats["structured"] is True
        assert first.stats["sparse_nnz"] == compiled.constraint_nnz
        assert first.stats["factorization_time"] >= 0.0
        assert first.stats["schur_time"] >= 0.0
        assert first.stats["block_factorizations"] > 0
        assert first.stats["pieces_cache_reused"] is False
        second = solve_compiled(
            compiled, backend="barrier", options={"structured": True}
        )
        # The second solve of the same compiled problem reuses the cached
        # reduction pieces (CSR slices, supports, projected bases).
        assert second.stats["pieces_cache_reused"] is True

    def test_dense_solves_report_nnz_but_no_split(self):
        compiled = compiled_workload(2)
        dense = solve_compiled(
            compiled, backend="barrier", options={"structured": False}
        )
        assert dense.stats["sparse_nnz"] == compiled.constraint_nnz
        assert "factorization_time" not in dense.stats

    def test_metrics_registry_engagement_counters(self):
        compiled = compiled_workload(2)
        with obs.capture() as capture:
            solve_compiled(
                compiled, backend="barrier", options={"structured": True}
            )
            solve_compiled(
                compiled, backend="barrier", options={"structured": False}
            )
        metrics = capture.metrics
        assert metrics["solver.sparse_solves"]["value"] == 1.0
        assert metrics["solver.dense_solves"]["value"] == 1.0
        assert metrics["solver.block_factorizations"]["value"] > 0
        assert metrics["solver.sparse_nnz"]["count"] == 2
        assert metrics["solver.factorization_seconds"]["count"] == 1

    def test_session_stats_aggregate_sparse_reuse(self):
        workload = make_workload(2)
        allocator = JointAllocator(
            options=AllocatorOptions(verify=False, run_simulation=False)
        )
        session = allocator.workload_session(workload)
        application = workload.applications[0]
        buffers = application.configuration.task_graphs[0].buffers
        for limit in (8, 7, 6):
            session.allocate(
                capacity_limits={
                    application.name: {buffer.name: limit for buffer in buffers}
                }
            )
        stats = session.stats
        assert stats.sparse_solves == 3
        # The first solve builds the reduction pieces; the re-solves reuse.
        assert stats.sparse_pieces_reused == 2
        assert stats.block_factorizations > 0
        as_dict = stats.as_dict()
        assert as_dict["sparse_solves"] == 3
        assert as_dict["sparse_pieces_reused"] == 2


class TestSparseEdgeCases:
    def test_single_application_keeps_dense_special_case(self):
        compiled = compiled_workload(1)
        solution = solve_compiled(compiled, backend="barrier")
        assert solution.is_optimal
        assert solution.stats["structured"] is False
        # The CSR matrices are still there; only the solve path is dense.
        assert compiled.constraint_nnz > 0

    def test_zero_buffer_application(self):
        """An application with a single task and no buffers contributes a
        block without capacity variables or hyperbolic storage rows."""
        solo = (
            ConfigurationBuilder(name="solo", granularity=1.0)
            .processor("p1", replenishment_interval=40.0)
            .memory("m1")
            .task_graph("solo", period=10.0)
            .task("only", wcet=1.0, processor="p1")
            .build()
        )
        chain = chain_configuration(stages=2)
        workload = Workload(chain.platform, name="mixed")
        workload.add_application("chain", chain)
        workload.add_application("nobuf", solo)
        compiled = WorkloadSocpFormulation(workload).build().compile()
        assert compiled.block_structure is not None
        assert compiled.block_structure.num_blocks == 2
        structured = solve_compiled(
            compiled, backend="barrier", options={"structured": True}
        )
        dense = solve_compiled(
            compiled, backend="barrier", options={"structured": False}
        )
        assert structured.stats["structured"] is True
        assert_same_optimum(structured, dense)

    def test_pinned_bound_block_eliminates_blockwise(self):
        """A capacity limit landing on a buffer's lower bound compiles to an
        equality row; the QR blockwise elimination must agree with the dense
        path on the resulting collapsed block."""
        workload = make_workload(2)
        application = workload.applications[0]
        buffer = application.configuration.task_graphs[0].buffers[0]
        pinned = int(np.ceil(buffer.smallest_feasible_capacity))
        formulation = WorkloadSocpFormulation(
            workload,
            capacity_limits={application.name: {buffer.name: pinned}},
        )
        compiled = formulation.build().compile()
        structured = solve_compiled(
            compiled, backend="barrier", options={"structured": True}
        )
        dense = solve_compiled(
            compiled, backend="barrier", options={"structured": False}
        )
        assert structured.stats["structured"] is True
        assert_same_optimum(structured, dense)

    def test_wide_blocks_use_splu(self):
        """Dropping ``sparse_block_width`` to 1 routes every block through the
        sparse LU factorisation; the optimum must not move."""
        compiled = compiled_workload(2)
        splu = solve_compiled(
            compiled,
            backend="barrier",
            options={"structured": True, "sparse_block_width": 1},
        )
        dense = solve_compiled(
            compiled, backend="barrier", options={"structured": False}
        )
        assert splu.stats["structured"] is True
        assert splu.stats.get("structured_fallback_iterations", 0) == 0
        assert_same_optimum(splu, dense)

    def test_fallback_on_singular_factorization(self, monkeypatch):
        """When every block factorisation fails, the Newton loop silently
        hands each iteration to the dense solve — same optimum, and the
        fallback is visible in the stats."""
        compiled = compiled_workload(2)
        dense = solve_compiled(
            compiled, backend="barrier", options={"structured": False}
        )

        def always_singular(self, z, grad_objective):
            raise np.linalg.LinAlgError("forced singular block factor")

        monkeypatch.setattr(_StructuredWorkspace, "direction", always_singular)
        fallback = solve_compiled(
            compiled, backend="barrier", options={"structured": True}
        )
        assert fallback.is_optimal
        assert fallback.stats["structured"] is True
        assert fallback.stats["structured_fallback_iterations"] > 0
        assert_same_optimum(fallback, dense)


def pinned_pipeline(name: str, period: float = 10.0):
    """A two-stage pipeline with a pinned first budget (an equality row per
    block, so every application participates in the blockwise elimination)."""
    return (
        ConfigurationBuilder(name=name, granularity=1.0)
        .processor("p1", replenishment_interval=40.0)
        .processor("p2", replenishment_interval=40.0)
        .memory("m1")
        .task_graph(name, period=period)
        .task(f"{name}_in", wcet=1.0, processor="p1", min_budget=6.0, max_budget=6.0)
        .task(f"{name}_out", wcet=1.0, processor="p2")
        .buffer(f"{name}_b", source=f"{name}_in", target=f"{name}_out", memory="m1")
        .build()
    )


class TestEliminationSeedEviction:
    def test_seed_bounded_over_long_add_remove_trace(self):
        """Regression: over a long admission trace the compiled problem must
        not accumulate per-block elimination state.  The transfer seed is
        consumed by the first solve's elimination (then dropped), it never
        carries blocks of removed applications, and the per-edit elimination
        work stays at one freshly computed block."""
        base = pinned_pipeline("anchor")
        workload = Workload(base.platform, name="trace")
        workload.add_application("anchor", base)
        allocator = JointAllocator(
            options=AllocatorOptions(verify=False, run_simulation=False)
        )
        session = allocator.workload_session(workload)
        session.allocate()

        for round_index in range(6):
            name = f"guest{round_index}"
            session.add_application(name, pinned_pipeline(name, period=12.0))
            compiled = session._session.parametric.compiled
            seed = compiled.elimination_seed
            # Right after the edit: one seed entry per *transferred* block,
            # never more blocks than the new problem has.
            assert seed is not None
            assert len(seed) <= compiled.block_structure.num_blocks
            assert all(
                0 <= index < compiled.block_structure.num_blocks
                for index in seed
            )
            mapped = session.allocate()
            # The solve's elimination consumed the seed; nothing is retained.
            assert compiled.elimination_seed is None
            solve_stats = mapped.solver_info["solve_stats"]
            assert solve_stats["elimination_blocks_computed"] <= 1
            session.remove_application(name)
            session.allocate()
            assert (
                session._session.parametric.compiled.elimination_seed is None
            )

        stats = session.stats
        # 13 solves: 1 initial + 2 per round; every edit recomputes at most
        # the edited block (the trace would blow up quadratically if removed
        # blocks kept transferring).
        assert stats.solves == 13
        assert stats.elimination_blocks_computed <= 1 + 2 * 6
        assert stats.elimination_blocks_reused >= 6

    def test_repeat_solve_still_reuses_elimination_cache(self):
        compiled = compiled_workload(2)
        first = solve_compiled(compiled, backend="barrier")
        second = solve_compiled(compiled, backend="barrier")
        assert first.stats["elimination_computed"] is True
        assert second.stats["elimination_computed"] is False
        assert compiled.elimination_seed is None
