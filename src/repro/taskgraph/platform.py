"""Multiprocessor platform model: processors, memories and the platform itself.

This mirrors Section II-A of the paper.  A processor ``p`` runs a budget
scheduler (e.g. TDM) with a replenishment interval ``̺(p)`` and a worst-case
scheduling overhead ``o(p)`` per replenishment interval; a memory ``m`` has a
maximum storage capacity ``ς(m)`` that bounds the total size of the FIFO
buffers placed in it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional

from repro.exceptions import BindingError, ModelError


@dataclass(frozen=True)
class Processor:
    """A processor running a budget scheduler.

    Attributes
    ----------
    name:
        Unique identifier within the platform.
    replenishment_interval:
        The interval ``̺(p)`` over which every task's budget is guaranteed.
        Expressed in the same time unit as all other durations.
    scheduling_overhead:
        Worst-case scheduler overhead ``o(p)`` per replenishment interval;
        pre-allocated budget that is not available to tasks (Constraint (9)).
    """

    name: str
    replenishment_interval: float
    scheduling_overhead: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("processor name must be non-empty")
        if self.replenishment_interval <= 0.0:
            raise ModelError(
                f"processor {self.name!r} needs a positive replenishment interval, "
                f"got {self.replenishment_interval!r}"
            )
        if self.scheduling_overhead < 0.0:
            raise ModelError(
                f"processor {self.name!r} has negative scheduling overhead"
            )
        if self.scheduling_overhead >= self.replenishment_interval:
            raise ModelError(
                f"processor {self.name!r}: scheduling overhead "
                f"{self.scheduling_overhead} leaves no budget within the "
                f"replenishment interval {self.replenishment_interval}"
            )

    @property
    def allocatable_capacity(self) -> float:
        """Budget available to tasks per replenishment interval."""
        return self.replenishment_interval - self.scheduling_overhead


@dataclass(frozen=True)
class Memory:
    """A memory in which FIFO buffers are placed.

    ``capacity`` is the maximum total storage ``ς(m)``, in the same unit as
    the buffers' container sizes (e.g. bytes or words); ``None`` means the
    memory is unconstrained.
    """

    name: str
    capacity: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("memory name must be non-empty")
        if self.capacity is not None and self.capacity <= 0.0:
            raise ModelError(
                f"memory {self.name!r} needs a positive capacity or None, got {self.capacity!r}"
            )

    @property
    def is_bounded(self) -> bool:
        return self.capacity is not None


class Platform:
    """A set of processors and memories.

    The platform corresponds to the ``(P, M, ̺, o, ς)`` part of the paper's
    configuration tuple.
    """

    def __init__(
        self,
        processors: Iterable[Processor] = (),
        memories: Iterable[Memory] = (),
        name: str = "platform",
    ) -> None:
        self.name = name
        self._processors: Dict[str, Processor] = {}
        self._memories: Dict[str, Memory] = {}
        for processor in processors:
            self.add_processor(processor)
        for memory in memories:
            self.add_memory(memory)

    # -- construction -------------------------------------------------------
    def add_processor(self, processor: Processor) -> Processor:
        if processor.name in self._processors:
            raise ModelError(f"duplicate processor name {processor.name!r}")
        self._processors[processor.name] = processor
        return processor

    def add_memory(self, memory: Memory) -> Memory:
        if memory.name in self._memories:
            raise ModelError(f"duplicate memory name {memory.name!r}")
        self._memories[memory.name] = memory
        return memory

    # -- lookup --------------------------------------------------------------
    def processor(self, name: str) -> Processor:
        try:
            return self._processors[name]
        except KeyError:
            raise BindingError(f"unknown processor {name!r}") from None

    def memory(self, name: str) -> Memory:
        try:
            return self._memories[name]
        except KeyError:
            raise BindingError(f"unknown memory {name!r}") from None

    def has_processor(self, name: str) -> bool:
        return name in self._processors

    def has_memory(self, name: str) -> bool:
        return name in self._memories

    @property
    def processors(self) -> Dict[str, Processor]:
        return dict(self._processors)

    @property
    def memories(self) -> Dict[str, Memory]:
        return dict(self._memories)

    def __iter__(self) -> Iterator[Processor]:
        return iter(self._processors.values())

    def __len__(self) -> int:
        return len(self._processors)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Platform({self.name!r}, processors={sorted(self._processors)}, "
            f"memories={sorted(self._memories)})"
        )


def homogeneous_platform(
    processor_count: int,
    replenishment_interval: float,
    scheduling_overhead: float = 0.0,
    memory_capacity: Optional[float] = None,
    memory_count: int = 1,
    name: str = "platform",
) -> Platform:
    """Create a platform with identical processors and memories.

    Convenience used by the experiments: the paper's platforms consist of
    identical TDM-scheduled processors with a 40 Mcycle replenishment
    interval.
    """
    if processor_count <= 0:
        raise ModelError("processor_count must be positive")
    if memory_count <= 0:
        raise ModelError("memory_count must be positive")
    processors = [
        Processor(
            name=f"p{i + 1}",
            replenishment_interval=replenishment_interval,
            scheduling_overhead=scheduling_overhead,
        )
        for i in range(processor_count)
    ]
    memories = [
        Memory(name=f"m{i + 1}", capacity=memory_capacity) for i in range(memory_count)
    ]
    return Platform(processors=processors, memories=memories, name=name)
