"""Multi-rate synchronous dataflow (SDF) graphs and their SRDF expansion.

The paper restricts itself to task graphs that can be modelled by single-rate
dataflow graphs and names the extension to "more dynamic applications" as
future work.  This module implements the classical first step of that
extension: multi-rate SDF graphs (Lee & Messerschmitt 1987) with

* consistency checking through the balance equations,
* repetition-vector computation, and
* expansion into an equivalent single-rate (homogeneous) graph, so that all
  analyses of :mod:`repro.dataflow` (MCR, PAS, simulation) apply unchanged.

The expansion follows the standard construction (Sriram & Bhattacharyya): the
``k``-th firing of actor ``v`` becomes its own SRDF actor, and for every SDF
channel the producing firings are connected to the consuming firings that use
their tokens, with initial tokens distributed first.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.exceptions import GraphStructureError, ModelError
from repro.dataflow.graph import Actor, Queue, SRDFGraph


@dataclass(frozen=True)
class SDFActor:
    """A multi-rate SDF actor with a single firing duration."""

    name: str
    firing_duration: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("SDF actor name must be non-empty")
        if self.firing_duration < 0.0:
            raise ModelError(f"SDF actor {self.name!r} has a negative firing duration")


@dataclass(frozen=True)
class SDFChannel:
    """A channel with production/consumption rates and initial tokens."""

    name: str
    source: str
    target: str
    production_rate: int
    consumption_rate: int
    tokens: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("SDF channel name must be non-empty")
        if self.production_rate < 1 or self.consumption_rate < 1:
            raise ModelError(
                f"channel {self.name!r} needs positive production and consumption rates"
            )
        if self.tokens < 0:
            raise ModelError(f"channel {self.name!r} has a negative token count")


class SDFGraph:
    """A multi-rate synchronous dataflow graph."""

    def __init__(
        self,
        name: str = "sdf",
        actors: Tuple[SDFActor, ...] = (),
        channels: Tuple[SDFChannel, ...] = (),
    ) -> None:
        self.name = name
        self._actors: Dict[str, SDFActor] = {}
        self._channels: Dict[str, SDFChannel] = {}
        for actor in actors:
            self.add_actor(actor)
        for channel in channels:
            self.add_channel(channel)

    def add_actor(self, actor: SDFActor) -> SDFActor:
        if actor.name in self._actors:
            raise ModelError(f"duplicate SDF actor name {actor.name!r}")
        self._actors[actor.name] = actor
        return actor

    def add_channel(self, channel: SDFChannel) -> SDFChannel:
        if channel.name in self._channels:
            raise ModelError(f"duplicate SDF channel name {channel.name!r}")
        for endpoint in (channel.source, channel.target):
            if endpoint not in self._actors:
                raise GraphStructureError(
                    f"channel {channel.name!r} references unknown actor {endpoint!r}"
                )
        self._channels[channel.name] = channel
        return channel

    @property
    def actors(self) -> Tuple[SDFActor, ...]:
        return tuple(self._actors.values())

    @property
    def channels(self) -> Tuple[SDFChannel, ...]:
        return tuple(self._channels.values())

    def actor(self, name: str) -> SDFActor:
        try:
            return self._actors[name]
        except KeyError:
            raise GraphStructureError(f"unknown SDF actor {name!r}") from None

    # -- consistency ------------------------------------------------------------
    def repetition_vector(self) -> Dict[str, int]:
        """Smallest positive integer firing counts balancing every channel.

        Raises
        ------
        GraphStructureError
            If the graph is inconsistent (the balance equations only admit the
            trivial all-zero solution).
        """
        if not self._actors:
            return {}
        # Solve the balance equations with rational arithmetic via fractions.
        from fractions import Fraction

        rates: Dict[str, Optional[Fraction]] = {name: None for name in self._actors}
        # Process connected components via BFS over channels.
        adjacency: Dict[str, List[SDFChannel]] = {name: [] for name in self._actors}
        for channel in self._channels.values():
            adjacency[channel.source].append(channel)
            adjacency[channel.target].append(channel)

        for start in self._actors:
            if rates[start] is not None:
                continue
            rates[start] = Fraction(1)
            frontier = [start]
            while frontier:
                current = frontier.pop()
                for channel in adjacency[current]:
                    ratio = Fraction(channel.production_rate, channel.consumption_rate)
                    if channel.source == current:
                        implied = rates[current] * ratio
                        other = channel.target
                    else:
                        implied = rates[current] / ratio
                        other = channel.source
                    if rates[other] is None:
                        rates[other] = implied
                        frontier.append(other)
                    elif rates[other] != implied:
                        raise GraphStructureError(
                            f"SDF graph {self.name!r} is inconsistent at channel "
                            f"{channel.name!r}"
                        )

        denominators = [rate.denominator for rate in rates.values()]  # type: ignore[union-attr]
        lcm = 1
        for d in denominators:
            lcm = lcm * d // math.gcd(lcm, d)
        counts = {name: int(rate * lcm) for name, rate in rates.items()}  # type: ignore[operator]
        gcd_all = 0
        for value in counts.values():
            gcd_all = math.gcd(gcd_all, value)
        return {name: value // gcd_all for name, value in counts.items()}

    def is_consistent(self) -> bool:
        try:
            self.repetition_vector()
        except GraphStructureError:
            return False
        return True

    # -- expansion ----------------------------------------------------------------
    def to_srdf(self) -> SRDFGraph:
        """Expand into an equivalent single-rate (homogeneous) dataflow graph."""
        repetitions = self.repetition_vector()
        srdf = SRDFGraph(name=f"{self.name}.hsdf")
        for actor in self._actors.values():
            for k in range(repetitions[actor.name]):
                srdf.add_actor(
                    Actor(name=f"{actor.name}#{k}", firing_duration=actor.firing_duration)
                )
        for channel in self._channels.values():
            self._expand_channel(srdf, channel, repetitions)
        return srdf

    def _expand_channel(
        self, srdf: SRDFGraph, channel: SDFChannel, repetitions: Dict[str, int]
    ) -> None:
        """Connect producing firings to the consuming firings of their tokens.

        Token ``t`` (0-based, counting initial tokens first) is produced by
        firing ``(t − tokens) // production`` of the source (or exists
        initially when ``t < tokens``) and consumed by firing
        ``t // consumption`` of the target, all within one graph iteration;
        indices wrap modulo the repetition counts with the wrap count becoming
        initial tokens on the expanded edge.
        """
        production = channel.production_rate
        consumption = channel.consumption_rate
        source_repetitions = repetitions[channel.source]
        target_repetitions = repetitions[channel.target]
        tokens_per_iteration = production * source_repetitions

        edge_index = 0
        for consumer_firing in range(target_repetitions):
            for slot in range(consumption):
                token_index = consumer_firing * consumption + slot
                shifted = token_index - channel.tokens
                # How many iterations back the producing firing lies (0 = same
                # iteration); negative shifted values are initial tokens.
                iterations_back = -(-(-shifted) // tokens_per_iteration) if shifted < 0 else 0
                if shifted < 0:
                    iterations_back = (-shifted + tokens_per_iteration - 1) // tokens_per_iteration
                producer_global = shifted + iterations_back * tokens_per_iteration
                producer_firing = producer_global // production
                initial = iterations_back
                srdf.add_queue(
                    Queue(
                        name=f"{channel.name}#{edge_index}",
                        source=f"{channel.source}#{producer_firing % source_repetitions}",
                        target=f"{channel.target}#{consumer_firing}",
                        tokens=initial,
                    )
                )
                edge_index += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SDFGraph({self.name!r}, actors={len(self._actors)}, "
            f"channels={len(self._channels)})"
        )
