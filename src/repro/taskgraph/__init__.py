"""Application model: task graphs, FIFO buffers, platforms and configurations.

This package implements Section II-A of the paper: the configuration tuple
``C = (Q, P, M, µ, ̺, o, ς, g)`` and the task graphs
``T = (W, B, π, χ, ν, ζ, ι)`` it contains, plus builders, validation,
serialisation and synthetic workload generators.
"""

from repro.taskgraph.buffer import Buffer
from repro.taskgraph.builder import ConfigurationBuilder
from repro.taskgraph.configuration import Configuration, MappedConfiguration
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.platform import Memory, Platform, Processor, homogeneous_platform
from repro.taskgraph.task import Task
from repro.taskgraph import generators, serialization, validate

__all__ = [
    "Buffer",
    "Configuration",
    "ConfigurationBuilder",
    "MappedConfiguration",
    "Memory",
    "Platform",
    "Processor",
    "Task",
    "TaskGraph",
    "generators",
    "homogeneous_platform",
    "serialization",
    "validate",
]
