"""Independent verification of mapped configurations.

The allocator's outputs are checked against analyses that do not share code
with the SOCP formulation:

* a periodic admissible schedule with the required period exists for the
  SRDF graph instantiated with the *rounded* budgets and capacities
  (difference-constraint feasibility / maximum cycle ratio);
* the self-timed simulation of that graph sustains the required period;
* the budgets fit on every processor including scheduling overhead
  (Constraint (4));
* the buffers fit in every bounded memory;
* budgets are positive multiples of the granularity and capacities are
  positive integers not below the number of initially filled containers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.exceptions import ReproError
from repro.dataflow.construction import build_srdf_specification, instantiate_srdf
from repro.dataflow.mcr import is_period_feasible, maximum_cycle_ratio
from repro.dataflow.simulation import meets_period
from repro.scheduling.budget import validate_budget_feasibility
from repro.taskgraph.configuration import MappedConfiguration


@dataclass
class VerificationReport:
    """Outcome of verifying a mapped configuration."""

    issues: List[str] = field(default_factory=list)
    checked_graphs: int = 0
    minimum_periods: Dict[str, float] = field(default_factory=dict)

    @property
    def is_valid(self) -> bool:
        return not self.issues

    def add_issue(self, message: str) -> None:
        self.issues.append(message)

    def summary(self) -> str:
        if self.is_valid:
            return (
                f"mapping verified: {self.checked_graphs} task graph(s), "
                f"all throughput, processor and memory constraints satisfied"
            )
        lines = [f"mapping verification found {len(self.issues)} issue(s):"]
        lines.extend(f"  - {issue}" for issue in self.issues)
        return "\n".join(lines)


def verify_mapping(
    mapped: MappedConfiguration,
    simulate_iterations: int = 60,
    run_simulation: bool = True,
) -> VerificationReport:
    """Verify a mapped configuration; returns a report rather than raising."""
    report = VerificationReport()
    configuration = mapped.configuration
    granularity = configuration.granularity

    _check_values(mapped, report, granularity)
    report.issues.extend(validate_budget_feasibility(mapped))
    _check_memories(mapped, report)

    for graph in configuration.task_graphs:
        report.checked_graphs += 1
        missing = [t.name for t in graph.tasks if t.name not in mapped.budgets]
        missing += [b.name for b in graph.buffers if b.name not in mapped.buffer_capacities]
        if missing:
            report.add_issue(
                f"graph {graph.name!r}: missing budgets/capacities for {missing}"
            )
            continue
        specification = build_srdf_specification(graph)
        try:
            srdf = instantiate_srdf(
                specification,
                graph,
                configuration.platform,
                mapped.budgets,
                mapped.buffer_capacities,
            )
        except ReproError as error:
            report.add_issue(f"graph {graph.name!r}: {error}")
            continue
        report.minimum_periods[graph.name] = maximum_cycle_ratio(srdf)
        if not is_period_feasible(srdf, graph.period):
            report.add_issue(
                f"graph {graph.name!r}: no periodic admissible schedule with period "
                f"{graph.period} exists for the rounded budgets/capacities "
                f"(minimum period {report.minimum_periods[graph.name]:.6g})"
            )
            continue
        # Queues lowered from true CSDF buffers can carry fractional token
        # counts (the affine capacity linearisation); the MCR/potential
        # analyses above handle them, but the self-timed simulation indexes
        # firings by integer token counts and is skipped for such graphs.
        simulatable = all(q.has_integral_tokens for q in srdf.queues)
        if run_simulation and simulatable and not meets_period(
            srdf, graph.period, iterations=simulate_iterations
        ):
            report.add_issue(
                f"graph {graph.name!r}: the self-timed simulation does not sustain "
                f"the required period {graph.period}"
            )
    return report


def _check_values(
    mapped: MappedConfiguration, report: VerificationReport, granularity: float
) -> None:
    for task_name, budget in mapped.budgets.items():
        if budget <= 0.0:
            report.add_issue(f"task {task_name!r}: budget {budget} is not positive")
            continue
        granules = budget / granularity
        if abs(granules - round(granules)) > 1e-6:
            report.add_issue(
                f"task {task_name!r}: budget {budget} is not a multiple of the "
                f"granularity {granularity}"
            )
        graph, task = mapped.configuration.find_task(task_name)
        processor = mapped.configuration.platform.processor(task.processor)
        if budget > processor.replenishment_interval + 1e-9:
            report.add_issue(
                f"task {task_name!r}: budget {budget} exceeds the replenishment "
                f"interval of processor {task.processor!r}"
            )
    for buffer_name, capacity in mapped.buffer_capacities.items():
        if capacity < 1:
            report.add_issue(
                f"buffer {buffer_name!r}: capacity {capacity} is below one container"
            )
            continue
        if capacity != int(capacity):
            report.add_issue(
                f"buffer {buffer_name!r}: capacity {capacity} is not integral"
            )
        _, buffer = mapped.configuration.find_buffer(buffer_name)
        if capacity < buffer.initial_tokens:
            report.add_issue(
                f"buffer {buffer_name!r}: capacity {capacity} cannot hold the "
                f"{buffer.initial_tokens} initially filled containers"
            )
        if buffer.max_capacity is not None and capacity > buffer.max_capacity:
            report.add_issue(
                f"buffer {buffer_name!r}: capacity {capacity} exceeds the declared "
                f"maximum {buffer.max_capacity}"
            )


def _check_memories(mapped: MappedConfiguration, report: VerificationReport) -> None:
    configuration = mapped.configuration
    for memory_name, memory in configuration.platform.memories.items():
        if not memory.is_bounded:
            continue
        usage = 0.0
        for buffer in configuration.buffers_in_memory(memory_name):
            capacity = mapped.buffer_capacities.get(buffer.name)
            if capacity is None:
                continue
            usage += buffer.storage_for(capacity)
        if usage > memory.capacity + 1e-9:
            report.add_issue(
                f"memory {memory_name!r}: buffers use {usage:.6g} of only "
                f"{memory.capacity:.6g} available"
            )
