"""Analysis and reporting: throughput, feasibility screening, sensitivity, tables."""

from repro.analysis.feasibility import FeasibilityScreen, screen_configuration
from repro.analysis.latency import LatencyReport, analyse_latency, latency_lower_bound
from repro.analysis.report import render_markdown_table, render_series, render_table
from repro.analysis.sensitivity import (
    BudgetReductionStep,
    MarginalCapacityValue,
    budget_reduction_curve,
    diminishing_returns,
    marginal_capacity_values,
)
from repro.analysis.throughput import (
    GraphThroughputReport,
    analyse_throughput,
    utilisation_summary,
)

__all__ = [
    "BudgetReductionStep",
    "FeasibilityScreen",
    "GraphThroughputReport",
    "LatencyReport",
    "MarginalCapacityValue",
    "analyse_latency",
    "analyse_throughput",
    "latency_lower_bound",
    "budget_reduction_curve",
    "diminishing_returns",
    "marginal_capacity_values",
    "render_markdown_table",
    "render_series",
    "render_table",
    "screen_configuration",
    "utilisation_summary",
]
