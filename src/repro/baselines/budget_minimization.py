"""Budget minimisation for *fixed* buffer capacities.

Two independent methods are provided:

* :func:`minimal_budgets_fixed_capacities` — the other phase of the classical
  two-phase flow: solve the cone program with the capacities locked, so only
  budgets (and start times) remain free.
* :func:`bisect_uniform_budget` — an oracle that does not use the cone solver
  at all: assume every task receives the same budget, instantiate the SRDF
  graph and bisect on the budget using the Bellman–Ford feasibility test.
  For symmetric configurations (such as the paper's experiments) this gives
  the exact minimum uniform budget and is used to cross-validate the SOCP.
* :func:`producer_consumer_minimum_budget` — the closed-form solution of the
  paper's first experiment, used as an analytic reference in tests and
  benchmark shape checks.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional

from repro.exceptions import InfeasibleProblemError
from repro.core.allocator import AllocatorOptions, JointAllocator
from repro.core.objective import ObjectiveWeights
from repro.dataflow.construction import build_srdf_specification, instantiate_srdf
from repro.dataflow.mcr import is_period_feasible
from repro.taskgraph.configuration import Configuration, MappedConfiguration


def minimal_budgets_fixed_capacities(
    configuration: Configuration,
    capacities: Mapping[str, int],
    weights: Optional[ObjectiveWeights] = None,
    backend: str = "auto",
) -> MappedConfiguration:
    """Minimise the (weighted) budgets for fixed buffer capacities.

    The capacities are enforced as upper bounds; because larger buffers never
    increase the required budgets (monotonicity), the returned mapping uses at
    most the given capacities and its budgets are minimal for them.
    """
    allocator = JointAllocator(
        weights=weights or ObjectiveWeights.prefer_budgets(),
        options=AllocatorOptions(backend=backend),
    )
    limits = {name: int(value) for name, value in capacities.items()}
    return allocator.allocate(configuration, capacity_limits=limits)


def is_uniform_budget_feasible(
    configuration: Configuration,
    budget: float,
    capacities: Mapping[str, int],
) -> bool:
    """PAS feasibility of giving *every* task the same budget.

    Uses only the dataflow substrate (graph instantiation + Bellman–Ford), not
    the cone solver, so it is an independent oracle.
    """
    if budget <= 0.0:
        return False
    budgets = {task.name: budget for _, task in configuration.all_tasks()}
    for graph in configuration.task_graphs:
        for task in graph.tasks:
            processor = configuration.platform.processor(task.processor)
            if budget > processor.allocatable_capacity + 1e-12:
                return False
        spec = build_srdf_specification(graph)
        srdf = instantiate_srdf(spec, graph, configuration.platform, budgets, capacities)
        if not is_period_feasible(srdf, graph.period):
            return False
    # Per-processor capacity (Constraint (4) without the rounding slack, since
    # the caller controls whether the budget is granularity-aligned).
    for processor_name, processor in configuration.platform.processors.items():
        tasks = configuration.tasks_on_processor(processor_name)
        if tasks and len(tasks) * budget > processor.allocatable_capacity + 1e-12:
            return False
    return True


def bisect_uniform_budget(
    configuration: Configuration,
    capacities: Mapping[str, int],
    tolerance: float = 1e-6,
) -> float:
    """Smallest uniform budget for which a PAS with the required period exists.

    Raises
    ------
    InfeasibleProblemError
        When even the largest possible uniform budget is insufficient.
    """
    high = min(
        processor.allocatable_capacity
        for processor in configuration.platform.processors.values()
    )
    # Account for processors shared by several tasks.
    for processor_name, processor in configuration.platform.processors.items():
        tasks = configuration.tasks_on_processor(processor_name)
        if tasks:
            high = min(high, processor.allocatable_capacity / len(tasks))
    if not is_uniform_budget_feasible(configuration, high, capacities):
        raise InfeasibleProblemError(
            f"even a uniform budget of {high:.6g} cannot satisfy the throughput "
            f"requirements of {configuration.name!r} with the given capacities"
        )
    low = 0.0
    while high - low > tolerance * max(1.0, high):
        mid = 0.5 * (low + high)
        if is_uniform_budget_feasible(configuration, mid, capacities):
            high = mid
        else:
            low = mid
    return high


def producer_consumer_minimum_budget(
    buffer_capacity: int,
    replenishment_interval: float = 40.0,
    wcet: float = 1.0,
    period: float = 10.0,
) -> float:
    """Closed-form minimal (equal) budget of the paper's producer-consumer graph.

    For the two-task graph of Figure 1 with both tasks on their own processor,
    the binding cycles of the dataflow graph are the two self-loops
    (``̺·χ/β ≤ µ``) and the producer-consumer cycle
    (``2(̺ − β) + 2·̺·χ/β ≤ d·µ``), giving

        β_min(d) = max( ̺·χ/µ ,  [ (2̺ − d·µ) + sqrt((2̺ − d·µ)² + 16·̺·χ) ] / 4 ).
    """
    if buffer_capacity < 1:
        raise InfeasibleProblemError("the buffer needs at least one container")
    rho = float(replenishment_interval)
    chi = float(wcet)
    mu = float(period)
    d = float(buffer_capacity)
    self_loop_bound = rho * chi / mu
    a = 2.0 * rho - d * mu
    cycle_bound = (a + math.sqrt(a * a + 16.0 * rho * chi)) / 4.0
    beta = max(self_loop_bound, cycle_bound)
    if beta > rho:
        raise InfeasibleProblemError(
            f"no budget ≤ the replenishment interval satisfies the period with "
            f"{buffer_capacity} containers"
        )
    return beta
