"""Single-rate dataflow (SRDF) graphs.

An SRDF graph (also known as a homogeneous SDF graph, computation graph or
marked graph) is a directed multigraph whose vertices are *actors* with a
single firing duration ``ρ(v)`` and whose edges are unbounded token *queues*
with an initial number of tokens ``δ(e)``.  In every firing an actor consumes
one token from each input queue and produces one token on each output queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import networkx as nx

from repro.exceptions import GraphStructureError, ModelError


@dataclass(frozen=True)
class Actor:
    """An SRDF actor with a single worst-case firing duration ``ρ(v) ≥ 0``."""

    name: str
    firing_duration: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("actor name must be non-empty")
        if self.firing_duration < 0.0:
            raise ModelError(
                f"actor {self.name!r} has a negative firing duration "
                f"{self.firing_duration!r}"
            )


@dataclass(frozen=True)
class Queue:
    """A token queue (edge) of an SRDF graph with ``δ(e)`` initial tokens.

    ``tokens`` is integral for directly-constructed graphs; queues lowered
    from cyclo-static buffers may carry fractional counts (the affine
    capacity linearisation), which the MCR/potential analyses handle
    unchanged while the integer-indexed self-timed simulation skips them.
    """

    name: str
    source: str
    target: str
    tokens: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("queue name must be non-empty")
        if self.tokens < 0:
            raise ModelError(f"queue {self.name!r} has a negative token count")

    @property
    def has_integral_tokens(self) -> bool:
        return float(self.tokens).is_integer()

    @property
    def is_self_loop(self) -> bool:
        return self.source == self.target


class SRDFGraph:
    """A single-rate dataflow graph ``G = (V, E, ρ, δ)``."""

    def __init__(
        self,
        name: str = "srdf",
        actors: Iterable[Actor] = (),
        queues: Iterable[Queue] = (),
    ) -> None:
        self.name = name
        self._actors: Dict[str, Actor] = {}
        self._queues: Dict[str, Queue] = {}
        self._outgoing: Dict[str, List[str]] = {}
        self._incoming: Dict[str, List[str]] = {}
        for actor in actors:
            self.add_actor(actor)
        for queue in queues:
            self.add_queue(queue)

    # -- construction -----------------------------------------------------------
    def add_actor(self, actor: Actor) -> Actor:
        if actor.name in self._actors:
            raise ModelError(f"duplicate actor name {actor.name!r}")
        self._actors[actor.name] = actor
        self._outgoing[actor.name] = []
        self._incoming[actor.name] = []
        return actor

    def add_queue(self, queue: Queue) -> Queue:
        if queue.name in self._queues:
            raise ModelError(f"duplicate queue name {queue.name!r}")
        for endpoint in (queue.source, queue.target):
            if endpoint not in self._actors:
                raise GraphStructureError(
                    f"queue {queue.name!r} references unknown actor {endpoint!r}"
                )
        self._queues[queue.name] = queue
        self._outgoing[queue.source].append(queue.name)
        self._incoming[queue.target].append(queue.name)
        return queue

    # -- lookup ----------------------------------------------------------------------
    def actor(self, name: str) -> Actor:
        try:
            return self._actors[name]
        except KeyError:
            raise GraphStructureError(f"unknown actor {name!r}") from None

    def queue(self, name: str) -> Queue:
        try:
            return self._queues[name]
        except KeyError:
            raise GraphStructureError(f"unknown queue {name!r}") from None

    def has_actor(self, name: str) -> bool:
        return name in self._actors

    @property
    def actors(self) -> Tuple[Actor, ...]:
        return tuple(self._actors.values())

    @property
    def queues(self) -> Tuple[Queue, ...]:
        return tuple(self._queues.values())

    @property
    def actor_names(self) -> Tuple[str, ...]:
        return tuple(self._actors.keys())

    def firing_duration(self, actor_name: str) -> float:
        return self.actor(actor_name).firing_duration

    def tokens(self, queue_name: str) -> int:
        return self.queue(queue_name).tokens

    def output_queues(self, actor_name: str) -> List[Queue]:
        self.actor(actor_name)
        return [self._queues[name] for name in self._outgoing[actor_name]]

    def input_queues(self, actor_name: str) -> List[Queue]:
        self.actor(actor_name)
        return [self._queues[name] for name in self._incoming[actor_name]]

    def __len__(self) -> int:
        return len(self._actors)

    def __iter__(self) -> Iterator[Actor]:
        return iter(self._actors.values())

    # -- derived views ------------------------------------------------------------------
    def to_networkx(self) -> nx.MultiDiGraph:
        """Export as a networkx multigraph (queue objects on the edges)."""
        graph = nx.MultiDiGraph(name=self.name)
        for actor in self._actors.values():
            graph.add_node(actor.name, actor=actor)
        for queue in self._queues.values():
            graph.add_edge(queue.source, queue.target, key=queue.name, queue=queue)
        return graph

    def with_updates(
        self,
        firing_durations: Optional[Dict[str, float]] = None,
        tokens: Optional[Dict[str, int]] = None,
        name: Optional[str] = None,
    ) -> "SRDFGraph":
        """Return a copy with some firing durations and/or token counts replaced.

        Used heavily by monotonicity tests and by the conservative-rounding
        argument: rounding budgets up only ever *decreases* firing durations
        and rounding token counts up only ever *adds* tokens.
        """
        firing_durations = firing_durations or {}
        tokens = tokens or {}
        for actor_name in firing_durations:
            self.actor(actor_name)
        for queue_name in tokens:
            self.queue(queue_name)
        actors = [
            Actor(
                name=actor.name,
                firing_duration=firing_durations.get(actor.name, actor.firing_duration),
            )
            for actor in self._actors.values()
        ]
        queues = [
            Queue(
                name=queue.name,
                source=queue.source,
                target=queue.target,
                tokens=tokens.get(queue.name, queue.tokens),
            )
            for queue in self._queues.values()
        ]
        return SRDFGraph(name=name or self.name, actors=actors, queues=queues)

    # -- structural properties ----------------------------------------------------------
    def simple_cycles(self) -> List[List[Queue]]:
        """Enumerate the simple cycles as lists of queues.

        Intended for small graphs (tests, exact maximum-cycle-ratio
        computation); the number of simple cycles can be exponential.
        """
        graph = self.to_networkx()
        cycles: List[List[Queue]] = []
        # Self-loops are simple cycles of length one.
        for queue in self._queues.values():
            if queue.is_self_loop:
                cycles.append([queue])
        for node_cycle in nx.simple_cycles(nx.DiGraph(graph)):
            if len(node_cycle) < 2:
                continue
            # Expand node cycles into all parallel-edge combinations by picking,
            # for each hop, the queue minimising tokens (any other choice is
            # dominated for cycle-ratio purposes).
            chosen: List[Queue] = []
            ok = True
            for i, source in enumerate(node_cycle):
                target = node_cycle[(i + 1) % len(node_cycle)]
                parallel = [
                    q
                    for q in self._queues.values()
                    if q.source == source and q.target == target
                ]
                if not parallel:
                    ok = False
                    break
                chosen.append(min(parallel, key=lambda q: q.tokens))
            if ok:
                cycles.append(chosen)
        return cycles

    def is_deadlock_free(self) -> bool:
        """True when every directed cycle carries at least one initial token."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self._actors)
        for queue in self._queues.values():
            if queue.tokens == 0:
                if queue.is_self_loop:
                    return False
                graph.add_edge(queue.source, queue.target)
        return nx.is_directed_acyclic_graph(graph)

    def total_tokens(self) -> int:
        return sum(queue.tokens for queue in self._queues.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SRDFGraph({self.name!r}, actors={len(self._actors)}, "
            f"queues={len(self._queues)})"
        )
