"""Hierarchical tracing spans.

A *span* is one timed region of work — a solve phase, a barrier rung, a
rounding pass — with a name, wall-clock duration, free-form attributes and
child spans.  Spans nest through an ordinary ``with`` statement; the tracer
keeps a per-thread stack so concurrently tracing threads build independent
trees:

    from repro import obs

    with obs.span("allocate") as root:
        with obs.span("compile"):
            ...
        with obs.span("solve") as solve:
            solve.set(backend="barrier")

Two properties drive the design:

* **Near-zero overhead when disabled.**  Tracing is off by default; a
  disabled ``span()`` still measures its own duration (two
  ``time.perf_counter`` calls — exactly what the ad-hoc timing pairs it
  replaces cost), but performs *no* thread-local stack work, records nothing
  and keeps no attributes.  Callers can therefore use ``span.seconds`` for
  their statistics unconditionally.
* **Exception safety.**  A span that exits through an exception is still
  closed (its duration is valid) and carries ``status="error"`` plus an
  ``error`` attribute with the exception — the tree never loses a subtree to
  a raised error.

Completed *root* spans accumulate on the tracer (drained with
:meth:`Tracer.drain`) and are optionally forwarded to a sink (one record per
root tree, see :mod:`repro.obs.export`).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Mapping, Optional

__all__ = ["Span", "Tracer", "get_tracer", "span", "span_tree_size"]

#: Span terminal statuses.
STATUS_OK = "ok"
STATUS_ERROR = "error"


class Span:
    """One timed, attributed, nestable region of work."""

    __slots__ = (
        "name",
        "seconds",
        "attributes",
        "children",
        "status",
        "error",
        "_start",
        "_tracer",
    )

    def __init__(self, name: str, tracer: Optional["Tracer"] = None) -> None:
        self.name = name
        self.seconds: float = 0.0
        self.attributes: Dict[str, object] = {}
        self.children: List["Span"] = []
        self.status: str = STATUS_OK
        self.error: Optional[str] = None
        self._start: float = 0.0
        #: ``None`` marks a disabled span: it times itself but records nothing.
        self._tracer = tracer

    # -- context manager ----------------------------------------------------
    def __enter__(self) -> "Span":
        tracer = self._tracer
        if tracer is not None:
            tracer._push(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.seconds = time.perf_counter() - self._start
        if exc is not None:
            self.status = STATUS_ERROR
            self.error = f"{exc_type.__name__}: {exc}"
        tracer = self._tracer
        if tracer is not None:
            tracer._pop(self)
        return False  # never swallow the exception

    # -- attributes ---------------------------------------------------------
    def set(self, **attributes: object) -> "Span":
        """Attach attributes; a no-op on disabled spans."""
        if self._tracer is not None:
            self.attributes.update(attributes)
        return self

    @property
    def enabled(self) -> bool:
        return self._tracer is not None

    # -- (de)serialisation --------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """The JSON-serialisable span tree (schema ``repro.obs`` v1)."""
        data: Dict[str, object] = {
            "name": self.name,
            "seconds": float(self.seconds),
            "status": self.status,
        }
        if self.error is not None:
            data["error"] = self.error
        if self.attributes:
            data["attributes"] = dict(self.attributes)
        if self.children:
            data["children"] = [child.as_dict() for child in self.children]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Span":
        span = cls(str(data["name"]))
        span.seconds = float(data.get("seconds", 0.0))
        span.status = str(data.get("status", STATUS_OK))
        error = data.get("error")
        span.error = None if error is None else str(error)
        span.attributes = dict(data.get("attributes", {}))
        span.children = [cls.from_dict(child) for child in data.get("children", [])]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.seconds * 1e3:.2f} ms, "
            f"children={len(self.children)})"
        )


def span_tree_size(span_dict: Mapping[str, Any]) -> int:
    """Number of spans in one serialised tree (itself plus all descendants)."""
    return 1 + sum(
        span_tree_size(child) for child in span_dict.get("children", [])
    )


#: Singleton no-op span parent marker (kept for __slots__-friendly pops).
class Tracer:
    """Collects span trees per thread; disabled (and allocation-light) by default.

    ``enabled`` gates everything: a disabled tracer hands out spans that only
    time themselves.  When enabled, spans entered on a thread nest under that
    thread's open span (one stack per thread), and completed root spans
    accumulate in :attr:`finished` until :meth:`drain` — optionally also
    forwarded to :attr:`sink` (any object with an ``emit_span(span_dict)``
    method) the moment the root closes.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self.sink = None
        self._local = threading.local()
        self._lock = threading.Lock()
        self._finished: List[Span] = []

    # -- span creation ------------------------------------------------------
    def span(self, name: str, **attributes: object) -> Span:
        """Open a span; use as ``with tracer.span("name") as s:``."""
        if not self.enabled:
            return Span(name, tracer=None)
        span = Span(name, tracer=self)
        if attributes:
            span.attributes.update(attributes)
        return span

    # -- stack bookkeeping (enabled path only) ------------------------------
    def _stack(self) -> List[Span]:
        try:
            return self._local.stack
        except AttributeError:
            stack: List[Span] = []
            self._local.stack = stack
            return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # Tolerate a stack scrambled by misuse (exiting spans out of order):
        # drop everything above the span, then the span itself.
        while stack:
            top = stack.pop()
            if top is span:
                break
        if stack:
            stack[-1].children.append(span)
            return
        with self._lock:
            self._finished.append(span)
        sink = self.sink
        if sink is not None:
            sink.emit_span(span.as_dict())

    # -- harvesting ---------------------------------------------------------
    @property
    def finished(self) -> List[Span]:
        """Completed root spans collected so far (shared list — do not mutate)."""
        with self._lock:
            return list(self._finished)

    def drain(self) -> List[Span]:
        """Return and clear the completed root spans."""
        with self._lock:
            finished, self._finished = self._finished, []
        return finished

    def reset(self) -> None:
        self.drain()


#: The process-global tracer behind :func:`repro.obs.span`.
_TRACER = Tracer()


def get_tracer() -> Tracer:
    return _TRACER


def span(name: str, **attributes: object) -> Span:
    """Open a span on the global tracer (module-level convenience)."""
    return _TRACER.span(name, **attributes)
