"""Problem container and compilation to numerical form.

:class:`ConeProgram` is the modelling entry point of the optimisation
substrate: variables and constraints are registered on it, an affine
objective is chosen, and :meth:`ConeProgram.solve` dispatches to one of the
backends (:mod:`repro.solver.barrier`, :mod:`repro.solver.linprog_backend`,
:mod:`repro.solver.scipy_backend`).

The numerical backends do not operate on the symbolic objects directly;
:meth:`ConeProgram.compile` lowers the program into a
:class:`CompiledProblem` made of dense numpy arrays:

* objective vector ``c`` and offset ``c0``,
* inequalities ``G·x ≤ h`` (variable bounds folded in),
* equalities ``A·x = b``,
* hyperbolic constraints as coefficient-vector tuples,
* second-order cone constraints as matrix/vector tuples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import FormulationError
from repro.obs.trace import span as obs_span
from repro.solver.constraints import (
    EQUAL,
    GREATER_EQUAL,
    LESS_EQUAL,
    HyperbolicConstraint,
    LinearConstraint,
    SecondOrderConeConstraint,
)
from repro.solver.expression import (
    AffineExpression,
    ExpressionLike,
    Variable,
    linear_sum,
)
from repro.solver.result import Solution

Constraint = Union[LinearConstraint, HyperbolicConstraint, SecondOrderConeConstraint]


def bounds_collapse(lower: float, upper: float) -> bool:
    """Bounds close enough that compilation emits an equality row.

    The single definition shared by :meth:`ConeProgram.compile` and the
    parametric layers (:class:`repro.core.formulation.
    ParametricSocpFormulation` detects this case to fall back to a rebuild,
    since an equality row cannot be produced by mutating inequality
    right-hand sides).
    """
    return abs(upper - lower) <= 1e-12 * max(1.0, abs(lower))


@dataclass
class CompiledHyperbolic:
    """Numerical form of ``(p·x + p0)·(q·x + q0) ≥ bound``."""

    p: np.ndarray
    p0: float
    q: np.ndarray
    q0: float
    bound: float
    name: str = ""


@dataclass
class CompiledCone:
    """Numerical form of ``‖A·x + b‖₂ ≤ c·x + d``."""

    A: np.ndarray
    b: np.ndarray
    c: np.ndarray
    d: float
    name: str = ""


@dataclass
class BlockStructure:
    """Block partition of a compiled problem's variables and constraints.

    Emitted by :meth:`ConeProgram.compile` when the program declared variable
    blocks (:meth:`ConeProgram.declare_blocks`) — per-application blocks in
    :class:`repro.core.formulation._BlockAssembly` — and every non-linear and
    equality constraint turned out to be confined to a single block.  The
    barrier backend uses it to eliminate equalities blockwise and to replace
    the dense Newton solve with a block-Cholesky + Schur-complement solve on
    the arrow-structured KKT system (see
    :class:`repro.solver.barrier.BarrierSolver`).

    ``ranges`` are half-open variable index ranges, one per block, covering
    every variable exactly once in order.  ``row_blocks`` assigns each
    inequality row the block its support lies in, with ``-1`` marking the
    *coupling rows* whose support spans several blocks (the shared processor
    and memory capacity rows of a workload program).
    """

    ranges: List[Tuple[int, int]]
    row_blocks: np.ndarray          #: block per inequality row; -1 = coupling
    equality_blocks: np.ndarray     #: block per equality row (always single-block)
    hyperbolic_blocks: List[int]    #: block per hyperbolic constraint
    cone_blocks: List[int]          #: block per SOC constraint

    @property
    def num_blocks(self) -> int:
        return len(self.ranges)

    @property
    def coupling_rows(self) -> np.ndarray:
        """Indices of the inequality rows whose support spans several blocks."""
        return np.flatnonzero(self.row_blocks < 0)


@dataclass
class CompiledProblem:
    """Dense numerical representation of a :class:`ConeProgram`."""

    variables: List[Variable]
    c: np.ndarray
    c0: float
    G: np.ndarray
    h: np.ndarray
    A: np.ndarray
    b: np.ndarray
    hyperbolic: List[CompiledHyperbolic]
    cones: List[CompiledCone]
    inequality_names: List[str] = field(default_factory=list)
    #: Optional per-application block partition (see :class:`BlockStructure`);
    #: ``None`` for programs without declared blocks.
    block_structure: Optional[BlockStructure] = None
    #: Cache of the equality-elimination result (particular point + null-space
    #: basis), written by the barrier backend on first use.  Valid as long as
    #: ``A`` and ``b`` are unchanged — parametric re-solves mutate only ``h``,
    #: so warm-started sessions reuse one elimination across every solve.
    elimination_cache: Optional[object] = field(
        default=None, repr=False, compare=False
    )
    #: Optional per-block elimination seed (block index → validated basis
    #: carried over from a *different* compiled problem), installed by
    #: :func:`repro.solver.barrier.transfer_block_eliminations` when a session
    #: is edited incrementally.  The blockwise elimination verifies each
    #: seeded block's equality data before reusing its basis, so a stale seed
    #: costs one comparison and falls back to the SVD.
    elimination_seed: Optional[Dict[int, object]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    def index_of(self, variable: Variable) -> int:
        try:
            return self._index[variable]
        except AttributeError:
            self._index = {var: i for i, var in enumerate(self.variables)}
            return self._index[variable]

    def objective_value(self, x: np.ndarray) -> float:
        return float(self.c @ x + self.c0)

    def point_as_mapping(self, x: np.ndarray) -> Dict[Variable, float]:
        return {var: float(x[i]) for i, var in enumerate(self.variables)}

    def vector_from_mapping(
        self, values: Mapping[Variable, float], default: float = 0.0
    ) -> np.ndarray:
        x = np.full(self.num_variables, float(default))
        for i, var in enumerate(self.variables):
            if var in values:
                x[i] = float(values[var])
        return x

    # -- feasibility inspection -------------------------------------------
    def max_linear_violation(self, x: np.ndarray) -> float:
        violation = 0.0
        if self.G.size:
            violation = max(violation, float(np.max(self.G @ x - self.h)))
        if self.A.size:
            violation = max(violation, float(np.max(np.abs(self.A @ x - self.b))))
        return violation

    def min_cone_margin(self, x: np.ndarray) -> float:
        margin = np.inf
        for hyp in self.hyperbolic:
            p = float(hyp.p @ x + hyp.p0)
            q = float(hyp.q @ x + hyp.q0)
            margin = min(margin, p * q - hyp.bound, p, q)
        for cone in self.cones:
            u = cone.A @ x + cone.b
            v = float(cone.c @ x + cone.d)
            margin = min(margin, v - float(np.linalg.norm(u)))
        return margin


class ConeProgram:
    """A convex optimisation problem with linear and second-order cone constraints."""

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self._variables: List[Variable] = []
        self._names: Dict[str, Variable] = {}
        self._linear: List[LinearConstraint] = []
        self._hyperbolic: List[HyperbolicConstraint] = []
        self._cones: List[SecondOrderConeConstraint] = []
        self._objective: AffineExpression = AffineExpression()
        self._sense: str = "min"
        self._block_groups: Optional[List[Tuple[Variable, ...]]] = None

    # -- variables ---------------------------------------------------------
    def add_variable(
        self,
        name: str,
        lower: Optional[float] = None,
        upper: Optional[float] = None,
    ) -> Variable:
        """Create and register a decision variable with optional bounds."""
        if name in self._names:
            raise FormulationError(f"duplicate variable name {name!r}")
        variable = Variable(name, lower, upper)
        self._variables.append(variable)
        self._names[name] = variable
        return variable

    def variable(self, name: str) -> Variable:
        """Look up a registered variable by name."""
        try:
            return self._names[name]
        except KeyError:
            raise FormulationError(f"unknown variable {name!r}") from None

    @property
    def variables(self) -> Tuple[Variable, ...]:
        return tuple(self._variables)

    def declare_blocks(self, groups: Sequence[Sequence[Variable]]) -> None:
        """Declare a block partition of the variables for the solver.

        ``groups`` lists the variables of each block (per application, in the
        workload formulation).  :meth:`compile` turns the declaration into a
        :class:`BlockStructure` when the groups partition the variables into
        contiguous index ranges and every equality / hyperbolic / SOC
        constraint is confined to one block; otherwise the compiled problem
        simply carries no structure and the solver uses its dense path, so
        declaring blocks is always safe.
        """
        for group in groups:
            for var in group:
                if self._names.get(var.name) is not var:
                    raise FormulationError(
                        f"block declaration references variable {var.name!r} "
                        f"that is not registered with program {self.name!r}"
                    )
        self._block_groups = [tuple(group) for group in groups]

    # -- constraints --------------------------------------------------------
    def add_constraint(self, constraint: Constraint) -> Constraint:
        """Register an already-constructed constraint object."""
        if isinstance(constraint, LinearConstraint):
            self._check_known_variables(constraint.expression)
            self._linear.append(constraint)
        elif isinstance(constraint, HyperbolicConstraint):
            self._check_known_variables(constraint.x)
            self._check_known_variables(constraint.y)
            self._hyperbolic.append(constraint)
        elif isinstance(constraint, SecondOrderConeConstraint):
            for row in constraint.rows:
                self._check_known_variables(row)
            self._check_known_variables(constraint.rhs)
            self._cones.append(constraint)
        else:
            raise FormulationError(
                f"unsupported constraint type {type(constraint).__name__}"
            )
        return constraint

    def add_linear(
        self,
        lhs: ExpressionLike,
        sense: str,
        rhs: ExpressionLike,
        name: Optional[str] = None,
    ) -> LinearConstraint:
        """Add an affine constraint ``lhs <sense> rhs``."""
        constraint = LinearConstraint(lhs, sense, rhs, name=name)
        return self.add_constraint(constraint)  # type: ignore[return-value]

    def add_less_equal(
        self, lhs: ExpressionLike, rhs: ExpressionLike, name: Optional[str] = None
    ) -> LinearConstraint:
        return self.add_linear(lhs, LESS_EQUAL, rhs, name=name)

    def add_greater_equal(
        self, lhs: ExpressionLike, rhs: ExpressionLike, name: Optional[str] = None
    ) -> LinearConstraint:
        return self.add_linear(lhs, GREATER_EQUAL, rhs, name=name)

    def add_equality(
        self, lhs: ExpressionLike, rhs: ExpressionLike, name: Optional[str] = None
    ) -> LinearConstraint:
        return self.add_linear(lhs, EQUAL, rhs, name=name)

    def add_hyperbolic(
        self,
        x: ExpressionLike,
        y: ExpressionLike,
        bound: float = 1.0,
        name: Optional[str] = None,
    ) -> HyperbolicConstraint:
        """Add the convex constraint ``x·y ≥ bound`` (``x, y > 0``)."""
        constraint = HyperbolicConstraint(x, y, bound, name=name)
        return self.add_constraint(constraint)  # type: ignore[return-value]

    def add_second_order_cone(
        self,
        rows: Sequence[ExpressionLike],
        rhs: ExpressionLike,
        name: Optional[str] = None,
    ) -> SecondOrderConeConstraint:
        """Add the constraint ``‖rows‖₂ ≤ rhs``."""
        constraint = SecondOrderConeConstraint(rows, rhs, name=name)
        return self.add_constraint(constraint)  # type: ignore[return-value]

    @property
    def linear_constraints(self) -> Tuple[LinearConstraint, ...]:
        return tuple(self._linear)

    @property
    def hyperbolic_constraints(self) -> Tuple[HyperbolicConstraint, ...]:
        return tuple(self._hyperbolic)

    @property
    def cone_constraints(self) -> Tuple[SecondOrderConeConstraint, ...]:
        return tuple(self._cones)

    @property
    def is_linear(self) -> bool:
        """True when the program contains no cone constraints (pure LP)."""
        return not self._hyperbolic and not self._cones

    # -- objective -----------------------------------------------------------
    def minimize(self, expression: ExpressionLike) -> None:
        """Set the objective to minimise the given affine expression."""
        expr = AffineExpression.coerce(expression)
        self._check_known_variables(expr)
        self._objective = expr
        self._sense = "min"

    def maximize(self, expression: ExpressionLike) -> None:
        """Set the objective to maximise the given affine expression."""
        expr = AffineExpression.coerce(expression)
        self._check_known_variables(expr)
        self._objective = expr
        self._sense = "max"

    @property
    def objective(self) -> AffineExpression:
        return self._objective

    @property
    def sense(self) -> str:
        return self._sense

    def _check_known_variables(self, expression: AffineExpression) -> None:
        for var in expression.variables():
            if self._names.get(var.name) is not var:
                raise FormulationError(
                    f"expression references variable {var.name!r} that is not "
                    f"registered with program {self.name!r}"
                )

    # -- compilation -----------------------------------------------------------
    def _vectorise(self, expression: AffineExpression, index: Dict[Variable, int]) -> Tuple[np.ndarray, float]:
        row = np.zeros(len(self._variables))
        for var, coeff in expression.terms.items():
            row[index[var]] = coeff
        return row, expression.constant

    def compile(self) -> CompiledProblem:
        """Lower the symbolic program into dense numpy arrays."""
        index = {var: i for i, var in enumerate(self._variables)}
        n = len(self._variables)

        # Objective (always converted to minimisation form).
        c, c0 = self._vectorise(self._objective, index)
        if self._sense == "max":
            c, c0 = -c, -c0

        g_rows: List[np.ndarray] = []
        h_vals: List[float] = []
        ineq_names: List[str] = []
        a_rows: List[np.ndarray] = []
        b_vals: List[float] = []

        # Variable bounds become inequality rows.  A variable whose bounds
        # coincide is emitted as an equality instead: two opposing
        # inequalities would leave the feasible region without an interior,
        # which the barrier method cannot handle.
        for var, i in index.items():
            if (
                var.lower is not None
                and var.upper is not None
                and bounds_collapse(var.lower, var.upper)
            ):
                row = np.zeros(n)
                row[i] = 1.0
                a_rows.append(row)
                b_vals.append(var.lower)
                continue
            if var.lower is not None:
                row = np.zeros(n)
                row[i] = -1.0
                g_rows.append(row)
                h_vals.append(-var.lower)
                ineq_names.append(f"lb[{var.name}]")
            if var.upper is not None:
                row = np.zeros(n)
                row[i] = 1.0
                g_rows.append(row)
                h_vals.append(var.upper)
                ineq_names.append(f"ub[{var.name}]")

        for constraint in self._linear:
            row, const = self._vectorise(constraint.expression, index)
            if constraint.is_equality:
                a_rows.append(row)
                b_vals.append(-const)
            else:
                # expression <= 0  ->  row @ x <= -const
                g_rows.append(row)
                h_vals.append(-const)
                ineq_names.append(constraint.name)

        hyperbolic = []
        for constraint in self._hyperbolic:
            p, p0 = self._vectorise(constraint.x, index)
            q, q0 = self._vectorise(constraint.y, index)
            hyperbolic.append(
                CompiledHyperbolic(p=p, p0=p0, q=q, q0=q0, bound=constraint.bound,
                                   name=constraint.name)
            )

        cones = []
        for constraint in self._cones:
            rows = [self._vectorise(row, index) for row in constraint.rows]
            A = np.vstack([r for r, _ in rows]) if rows else np.zeros((0, n))
            b = np.array([const for _, const in rows])
            cvec, d = self._vectorise(constraint.rhs, index)
            cones.append(CompiledCone(A=A, b=b, c=cvec, d=d, name=constraint.name))

        G = np.vstack(g_rows) if g_rows else np.zeros((0, n))
        h = np.array(h_vals)
        A = np.vstack(a_rows) if a_rows else np.zeros((0, n))
        b = np.array(b_vals)

        return CompiledProblem(
            variables=list(self._variables),
            c=c,
            c0=c0,
            G=G,
            h=h,
            A=A,
            b=b,
            hyperbolic=hyperbolic,
            cones=cones,
            inequality_names=ineq_names,
            block_structure=self._compile_block_structure(
                index, G, A, hyperbolic, cones
            ),
        )

    def _compile_block_structure(
        self,
        index: Dict[Variable, int],
        G: np.ndarray,
        A: np.ndarray,
        hyperbolic: List[CompiledHyperbolic],
        cones: List[CompiledCone],
    ) -> Optional[BlockStructure]:
        """Turn a :meth:`declare_blocks` declaration into a :class:`BlockStructure`.

        Returns ``None`` (no structure, dense solver path) when no blocks were
        declared, when the groups do not form contiguous index ranges covering
        every variable, or when an equality / hyperbolic / SOC constraint
        spans several blocks — only *linear inequality* rows may couple
        blocks, because only their barrier Hessian contribution is the
        low-rank term the Schur-complement solve handles.
        """
        if not self._block_groups:
            return None
        n = len(self._variables)
        col_block = np.full(n, -1, dtype=int)
        ranges: List[Tuple[int, int]] = []
        for block_index, group in enumerate(self._block_groups):
            if not group:
                return None
            columns = sorted(index[var] for var in group)
            start, stop = columns[0], columns[-1] + 1
            if stop - start != len(columns) or np.any(col_block[start:stop] >= 0):
                return None
            col_block[start:stop] = block_index
            ranges.append((start, stop))
        if np.any(col_block < 0):
            return None

        def blocks_of(rows: np.ndarray) -> np.ndarray:
            """Distinct blocks touched by the support of stacked row vectors."""
            columns = np.flatnonzero(np.any(np.atleast_2d(rows) != 0.0, axis=0))
            return np.unique(col_block[columns])

        def single_block(rows: np.ndarray) -> Optional[int]:
            touched = blocks_of(rows)
            if touched.size > 1:
                return None
            return int(touched[0]) if touched.size else 0

        # One vectorised pass over the (typically hundreds of) inequality
        # rows: which blocks each row touches, then single-block / coupling.
        touched_per_block = np.vstack(
            [(G[:, start:stop] != 0.0).any(axis=1) for start, stop in ranges]
        )
        touch_counts = touched_per_block.sum(axis=0)
        row_blocks = np.where(
            touch_counts == 0, 0, np.argmax(touched_per_block, axis=0)
        )
        row_blocks = np.where(touch_counts > 1, -1, row_blocks).astype(int)
        equality_blocks = np.empty(A.shape[0], dtype=int)
        for i in range(A.shape[0]):
            block = single_block(A[i])
            if block is None:
                return None
            equality_blocks[i] = block
        hyperbolic_blocks: List[int] = []
        for hyp in hyperbolic:
            block = single_block(np.vstack([hyp.p, hyp.q]))
            if block is None:
                return None
            hyperbolic_blocks.append(block)
        cone_blocks: List[int] = []
        for cone in cones:
            block = single_block(np.vstack([cone.A, cone.c.reshape(1, -1)]))
            if block is None:
                return None
            cone_blocks.append(block)
        return BlockStructure(
            ranges=ranges,
            row_blocks=row_blocks,
            equality_blocks=equality_blocks,
            hyperbolic_blocks=hyperbolic_blocks,
            cone_blocks=cone_blocks,
        )

    # -- solving -----------------------------------------------------------------
    def solve(
        self,
        backend: str = "auto",
        initial_point: Optional[Mapping[Variable, float]] = None,
        **options: object,
    ) -> Solution:
        """Solve the program and return a :class:`Solution`.

        Parameters
        ----------
        backend:
            ``"auto"`` (default) picks the LP backend for pure linear programs
            and the barrier interior-point method otherwise, falling back to
            the scipy backend if the barrier method fails to converge.
            ``"barrier"``, ``"linprog"`` and ``"scipy"`` force a backend.
        initial_point:
            Optional warm-start / strictly feasible hint keyed by variable.
        """
        from repro.solver import backends

        with obs_span("compile", program=self.name) as compile_span:
            compiled = self.compile()
        with obs_span("solve", program=self.name, backend=backend) as solve_span:
            solution = backends.solve_compiled(
                compiled, backend=backend, initial_point=initial_point, options=dict(options)
            )
            solve_span.set(backend_used=solution.backend, status=solution.status.value)
        solution.solve_time = solve_span.seconds
        solution.stats = dict(solution.stats)
        solution.stats["compile_time"] = compile_span.seconds
        if self._sense == "max" and solution.objective is not None:
            solution.objective = -solution.objective
        return solution

    def parametric(self) -> "ParametricProblem":  # noqa: F821 - forward ref
        """Compile once and wrap the result for repeated parametric re-solve.

        Returns a :class:`repro.solver.parametric.ParametricProblem`; register
        named right-hand-side / bound parameters on it and drive it through a
        :class:`repro.solver.parametric.SolveSession` to solve a family of
        related programs without re-compiling.
        """
        from repro.solver.parametric import ParametricProblem

        return ParametricProblem(self)

    def session(self, backend: str = "auto", **options: object) -> "SolveSession":  # noqa: F821
        """Shorthand for ``SolveSession(self.parametric(), backend, options)``."""
        from repro.solver.parametric import SolveSession

        return SolveSession(self.parametric(), backend=backend, options=options)

    # -- convenience -------------------------------------------------------------
    def sum(self, values: Sequence[ExpressionLike]) -> AffineExpression:
        """Alias for :func:`repro.solver.expression.linear_sum`."""
        return linear_sum(values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ConeProgram({self.name!r}, variables={len(self._variables)}, "
            f"linear={len(self._linear)}, hyperbolic={len(self._hyperbolic)}, "
            f"cones={len(self._cones)})"
        )
