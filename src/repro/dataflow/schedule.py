"""Periodic admissible schedules (PAS) of SRDF graphs.

A schedule assigns a start time to every firing ``σ(v, k)``.  It is periodic
with period ``φ`` when ``σ(v, k) = s(v) + (k − 1)·φ`` and admissible when every
firing finds a token on each of its input queues.  Initial start times ``s``
determine an admissible periodic schedule iff Constraint (1) of the paper
holds for every queue:

    s(v_j) ≥ s(v_i) + ρ(v_i) − δ(e_ij)·φ
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.exceptions import AnalysisError
from repro.dataflow.graph import SRDFGraph
from repro.dataflow.mcr import longest_path_potentials, maximum_cycle_ratio


@dataclass
class PeriodicSchedule:
    """A periodic schedule of an SRDF graph.

    Attributes
    ----------
    period:
        The period ``φ``; every actor fires exactly once per period.
    start_times:
        The initial start times ``s(v)`` of the first firing of each actor.
    """

    period: float
    start_times: Dict[str, float] = field(default_factory=dict)

    def start_time(self, actor_name: str, firing: int) -> float:
        """Start time of the ``firing``-th execution (1-based) of an actor."""
        if firing < 1:
            raise AnalysisError("firing indices are 1-based")
        try:
            offset = self.start_times[actor_name]
        except KeyError:
            raise AnalysisError(f"schedule has no start time for actor {actor_name!r}") from None
        return offset + (firing - 1) * self.period

    def finish_time(self, graph: SRDFGraph, actor_name: str, firing: int) -> float:
        return self.start_time(actor_name, firing) + graph.firing_duration(actor_name)

    def satisfies_constraints(self, graph: SRDFGraph, tolerance: float = 1e-7) -> bool:
        """Check Constraint (1) for every queue of the graph."""
        for queue in graph.queues:
            lhs = self.start_times.get(queue.target)
            rhs_base = self.start_times.get(queue.source)
            if lhs is None or rhs_base is None:
                return False
            rhs = (
                rhs_base
                + graph.firing_duration(queue.source)
                - queue.tokens * self.period
            )
            if lhs < rhs - tolerance:
                return False
        return True

    def makespan_of_first_iteration(self, graph: SRDFGraph) -> float:
        """Completion time of the latest first firing."""
        return max(
            self.start_times[actor.name] + actor.firing_duration for actor in graph.actors
        )


def compute_schedule(graph: SRDFGraph, period: float) -> Optional[PeriodicSchedule]:
    """Compute a PAS with the given period, or ``None`` when none exists.

    The start times returned are the component-wise smallest non-negative
    start times (as-soon-as-possible within the periodic regime).
    """
    if period <= 0.0:
        return None
    potentials = longest_path_potentials(graph, period)
    if potentials is None:
        return None
    return PeriodicSchedule(period=period, start_times=potentials)


def rate_optimal_schedule(graph: SRDFGraph, tolerance: float = 1e-9) -> PeriodicSchedule:
    """Compute a PAS at the graph's minimum feasible period (its MCR).

    Raises
    ------
    AnalysisError
        If the graph deadlocks (some cycle carries no tokens).
    """
    mcr = maximum_cycle_ratio(graph, tolerance=tolerance)
    if math.isinf(mcr):
        raise AnalysisError(
            f"graph {graph.name!r} deadlocks: a cycle without initial tokens exists"
        )
    # The MCR itself may be marginally infeasible numerically; nudge upward.
    period = mcr * (1.0 + 1e-9) + 1e-12
    schedule = compute_schedule(graph, period)
    if schedule is None:
        raise AnalysisError(
            f"internal error: period {period} derived from the MCR is infeasible"
        )
    return schedule


def validate_schedule_against_period(
    graph: SRDFGraph, schedule: PeriodicSchedule, required_period: float, tolerance: float = 1e-7
) -> bool:
    """True when the schedule is admissible and at least as fast as required."""
    return (
        schedule.period <= required_period + tolerance
        and schedule.satisfies_constraints(graph, tolerance=tolerance)
    )
