"""Time-division multiplex (TDM) budget scheduler model and simulator.

TDM is the budget scheduler used throughout the paper's experiments: a
processor's replenishment interval is divided into slots of one granule
``g``; each task owns a fixed set of slots whose total length is its budget.
The scheduler cycles through the slot wheel forever.

The simulator computes the exact completion time of a work item that arrives
at an arbitrary offset within the wheel, which lets the test-suite verify the
central modelling assumption of the paper (inherited from its reference
[10]): the two-actor latency-rate model — ``(̺ − β) + ̺·χ/β`` — is a
*conservative* bound on any concrete TDM schedule with that budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ModelError, SimulationError
from repro.scheduling.latency_rate import LatencyRateServer


@dataclass(frozen=True)
class TdmSlotTable:
    """Ownership of each slot of the TDM wheel.

    ``owners[i]`` is the name of the task owning slot ``i`` or ``None`` for an
    idle / overhead slot.  All slots have the same length ``slot_length``.
    """

    slot_length: float
    owners: Tuple[Optional[str], ...]

    def __post_init__(self) -> None:
        if self.slot_length <= 0.0:
            raise ModelError("slot length must be positive")
        if not self.owners:
            raise ModelError("a TDM slot table needs at least one slot")

    @property
    def wheel_length(self) -> float:
        """Length of one full rotation (the replenishment interval)."""
        return self.slot_length * len(self.owners)

    def budget_of(self, task_name: str) -> float:
        """Total slot time owned by a task per wheel rotation."""
        return self.slot_length * sum(1 for owner in self.owners if owner == task_name)

    def tasks(self) -> Tuple[str, ...]:
        return tuple(sorted({owner for owner in self.owners if owner is not None}))


def build_slot_table(
    budgets: Dict[str, float],
    replenishment_interval: float,
    granularity: float,
    scheduling_overhead: float = 0.0,
    interleave: bool = True,
) -> TdmSlotTable:
    """Construct a slot table realising the given budgets.

    Budgets must be multiples of the granularity (which the conservative
    rounding of the allocator guarantees).  ``interleave=True`` spreads each
    task's slots as evenly as possible over the wheel, which is the usual
    choice because it minimises the service latency actually experienced;
    ``interleave=False`` allocates each task's slots contiguously, which is
    the worst case covered by the latency-rate model.
    """
    if replenishment_interval <= 0.0:
        raise ModelError("replenishment interval must be positive")
    if granularity <= 0.0:
        raise ModelError("granularity must be positive")
    slot_count = int(round(replenishment_interval / granularity))
    if abs(slot_count * granularity - replenishment_interval) > 1e-6 * replenishment_interval:
        raise ModelError(
            "the replenishment interval must be an integer number of granules"
        )
    overhead_slots = int(math.ceil(scheduling_overhead / granularity - 1e-12))
    needed_slots: Dict[str, int] = {}
    for task, budget in budgets.items():
        slots = int(round(budget / granularity))
        if abs(slots * granularity - budget) > 1e-6 * max(budget, granularity):
            raise ModelError(
                f"budget {budget} of task {task!r} is not a multiple of the "
                f"granularity {granularity}"
            )
        if slots <= 0:
            raise ModelError(f"task {task!r} needs a positive number of slots")
        needed_slots[task] = slots
    total_needed = sum(needed_slots.values()) + overhead_slots
    if total_needed > slot_count:
        raise ModelError(
            f"budgets plus overhead need {total_needed} slots but the wheel only "
            f"has {slot_count}"
        )

    owners: List[Optional[str]] = [None] * slot_count
    if interleave:
        # Distribute each task's slots with an even stride over the wheel.
        position = 0.0
        for task in sorted(needed_slots):
            count = needed_slots[task]
            stride = slot_count / count
            offset = position
            for i in range(count):
                slot = int(offset + i * stride) % slot_count
                while owners[slot] is not None:
                    slot = (slot + 1) % slot_count
                owners[slot] = task
            position += 1.0
    else:
        cursor = overhead_slots
        for task in sorted(needed_slots):
            for _ in range(needed_slots[task]):
                owners[cursor] = task
                cursor += 1
    return TdmSlotTable(slot_length=granularity, owners=tuple(owners))


@dataclass
class TdmSimulationResult:
    """Outcome of serving one work item under a concrete TDM wheel."""

    arrival: float
    completion: float
    service_received: float

    @property
    def response_time(self) -> float:
        return self.completion - self.arrival


class TdmScheduler:
    """Simulator of a single processor's TDM wheel."""

    def __init__(self, slot_table: TdmSlotTable) -> None:
        self.slot_table = slot_table

    def latency_rate_bound(self, task_name: str) -> LatencyRateServer:
        """The latency-rate guarantee implied by the task's budget."""
        budget = self.slot_table.budget_of(task_name)
        if budget <= 0.0:
            raise ModelError(f"task {task_name!r} owns no slots")
        return LatencyRateServer.from_budget(budget, self.slot_table.wheel_length)

    def _owner_at(self, time: float) -> Optional[str]:
        wheel = self.slot_table.wheel_length
        offset = time % wheel
        index = int(offset / self.slot_table.slot_length)
        index = min(index, len(self.slot_table.owners) - 1)
        return self.slot_table.owners[index]

    def serve(self, task_name: str, work: float, arrival: float = 0.0) -> TdmSimulationResult:
        """Exact completion time of ``work`` cycles arriving at ``arrival``.

        The task executes only inside its own slots; execution is preemptive
        at slot boundaries.
        """
        if work < 0.0:
            raise SimulationError("work must be non-negative")
        if self.slot_table.budget_of(task_name) <= 0.0:
            raise SimulationError(f"task {task_name!r} owns no slots")
        if work == 0.0:
            return TdmSimulationResult(arrival=arrival, completion=arrival, service_received=0.0)

        slot = self.slot_table.slot_length
        time = arrival
        remaining = work
        # Walk slot boundaries; bounded by a generous number of wheel rotations.
        max_time = arrival + (work / self.slot_table.budget_of(task_name) + 2.0) * self.slot_table.wheel_length
        while remaining > 1e-12:
            if time > max_time + self.slot_table.wheel_length:
                raise SimulationError("TDM simulation did not terminate")  # pragma: no cover
            owner = self._owner_at(time)
            next_boundary = (math.floor(time / slot + 1e-12) + 1) * slot
            available = next_boundary - time
            if owner == task_name:
                used = min(available, remaining)
                remaining -= used
                time += used
            else:
                time = next_boundary
        return TdmSimulationResult(
            arrival=arrival, completion=time, service_received=work
        )

    def worst_case_response(self, task_name: str, work: float, samples: int = 64) -> float:
        """Largest response time over arrival offsets sampled across the wheel."""
        wheel = self.slot_table.wheel_length
        worst = 0.0
        for i in range(samples):
            arrival = wheel * i / samples
            result = self.serve(task_name, work, arrival=arrival)
            worst = max(worst, result.response_time)
        return worst
