"""Unit tests for the ConeProgram container and its compilation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import FormulationError
from repro.solver import ConeProgram, SolverStatus
from repro.solver.expression import Variable


class TestVariableManagement:
    def test_duplicate_names_rejected(self):
        program = ConeProgram()
        program.add_variable("x")
        with pytest.raises(FormulationError):
            program.add_variable("x")

    def test_lookup_by_name(self):
        program = ConeProgram()
        x = program.add_variable("x")
        assert program.variable("x") is x
        with pytest.raises(FormulationError):
            program.variable("y")

    def test_foreign_variable_rejected(self):
        program = ConeProgram()
        program.add_variable("x")
        stranger = Variable("z")
        with pytest.raises(FormulationError):
            program.add_less_equal(stranger, 1.0)

    def test_foreign_variable_in_objective_rejected(self):
        program = ConeProgram()
        stranger = Variable("z")
        with pytest.raises(FormulationError):
            program.minimize(stranger)


class TestCompilation:
    def test_bounds_become_inequalities(self):
        program = ConeProgram()
        program.add_variable("x", lower=0.0, upper=2.0)
        compiled = program.compile()
        assert compiled.G.shape == (2, 1)
        assert compiled.A.shape[0] == 0

    def test_pinched_bounds_become_equality(self):
        """lower == upper must compile to an equality row, not two inequalities."""
        program = ConeProgram()
        program.add_variable("x", lower=3.0, upper=3.0)
        compiled = program.compile()
        assert compiled.G.shape[0] == 0
        assert compiled.A.shape == (1, 1)
        assert compiled.b[0] == pytest.approx(3.0)

    def test_linear_constraints_compile_to_rows(self):
        program = ConeProgram()
        x = program.add_variable("x")
        y = program.add_variable("y")
        program.add_less_equal(x + 2.0 * y, 4.0)
        program.add_equality(x - y, 1.0)
        compiled = program.compile()
        assert compiled.G.shape == (1, 2)
        assert compiled.h[0] == pytest.approx(4.0)
        assert compiled.A.shape == (1, 2)
        assert compiled.b[0] == pytest.approx(1.0)

    def test_hyperbolic_compiles_with_offsets(self):
        program = ConeProgram()
        x = program.add_variable("x")
        y = program.add_variable("y")
        program.add_hyperbolic(x + 1.0, y, bound=2.0)
        compiled = program.compile()
        assert len(compiled.hyperbolic) == 1
        hyp = compiled.hyperbolic[0]
        assert hyp.p0 == pytest.approx(1.0)
        assert hyp.bound == pytest.approx(2.0)

    def test_maximisation_negates_objective(self):
        program = ConeProgram()
        x = program.add_variable("x", lower=0.0, upper=5.0)
        program.maximize(x)
        compiled = program.compile()
        assert compiled.c[0] == pytest.approx(-1.0)

    def test_objective_value_and_mapping_helpers(self):
        program = ConeProgram()
        x = program.add_variable("x")
        y = program.add_variable("y")
        program.minimize(2.0 * x + y + 1.0)
        compiled = program.compile()
        point = np.array([1.0, 3.0])
        assert compiled.objective_value(point) == pytest.approx(6.0)
        mapping = compiled.point_as_mapping(point)
        assert mapping[x] == pytest.approx(1.0)
        assert compiled.vector_from_mapping({y: 7.0})[1] == pytest.approx(7.0)

    def test_feasibility_inspection(self):
        program = ConeProgram()
        x = program.add_variable("x", lower=0.0)
        y = program.add_variable("y", lower=0.0)
        program.add_less_equal(x + y, 1.0)
        program.add_hyperbolic(x, y, bound=1.0)
        compiled = program.compile()
        good = np.array([2.0, 2.0])
        assert compiled.min_cone_margin(good) > 0.0
        assert compiled.max_linear_violation(good) == pytest.approx(3.0)


class TestSolveDispatch:
    def test_unknown_backend_rejected(self):
        program = ConeProgram()
        program.add_variable("x", lower=0.0)
        with pytest.raises(FormulationError):
            program.solve(backend="cplex")

    def test_trivial_lp(self):
        program = ConeProgram()
        x = program.add_variable("x", lower=1.0, upper=10.0)
        program.minimize(x)
        solution = program.solve()
        assert solution.is_optimal
        assert solution.value(x) == pytest.approx(1.0, abs=1e-6)

    def test_maximisation_objective_sign(self):
        program = ConeProgram()
        x = program.add_variable("x", lower=0.0, upper=3.0)
        program.maximize(2.0 * x)
        solution = program.solve()
        assert solution.is_optimal
        assert solution.objective == pytest.approx(6.0, abs=1e-6)

    def test_solution_value_of_expression(self):
        program = ConeProgram()
        x = program.add_variable("x", lower=2.0, upper=2.0)
        y = program.add_variable("y", lower=1.0, upper=5.0)
        program.minimize(y)
        solution = program.solve()
        assert solution.value(x + 2.0 * y) == pytest.approx(4.0, abs=1e-5)

    def test_infeasible_lp_reported(self):
        program = ConeProgram()
        x = program.add_variable("x", lower=0.0, upper=1.0)
        program.add_greater_equal(x, 2.0)
        program.minimize(x)
        solution = program.solve()
        assert solution.status is SolverStatus.INFEASIBLE

    def test_empty_program(self):
        program = ConeProgram()
        solution = program.solve()
        assert solution.is_optimal
        assert solution.objective == pytest.approx(0.0)
