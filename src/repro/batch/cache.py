"""Persistent, content-addressed result cache.

Repeated campaigns and overlapping sweeps solve many identical instances.
The cache keys every allocation by a SHA-256 hash of the *canonical JSON* of
the configuration, the extra capacity limits, and the allocator options that
influence the result (backend, weights, verification settings) — so a cache
hit is guaranteed to be the result the solver would have produced, and
operational knobs such as the worker count never fragment the cache.

Entries are JSON files sharded by the first two hex digits of the key, and
writes go through a temporary file followed by an atomic :func:`os.replace`,
which makes the cache safe to share between the worker processes of a
parallel batch run (and between concurrent batch runs on the same machine).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Mapping, Optional, Union

#: Bump when the cached payload layout changes; part of every cache key.
CACHE_FORMAT_VERSION = 1


def canonical_json(payload: Mapping[str, object]) -> str:
    """Serialise a payload to canonical JSON (sorted keys, no whitespace).

    Non-finite floats are rejected: ``json.dumps`` would emit the
    non-standard ``NaN``/``Infinity`` literals, which strict parsers refuse
    and which make hashes meaningless as identity (``NaN != NaN``).
    """
    try:
        return json.dumps(
            payload, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except ValueError as error:
        raise ValueError(
            f"payload contains a non-finite float (NaN or infinity), which has "
            f"no canonical JSON form: {error}"
        ) from None


def cache_key(
    configuration: Mapping[str, object],
    options: Mapping[str, object],
    capacity_limits: Optional[Mapping[str, int]] = None,
) -> str:
    """The content hash identifying one allocation problem.

    Parameters
    ----------
    configuration:
        The configuration as its canonical dictionary form
        (:func:`repro.taskgraph.serialization.configuration_to_dict`).
    options:
        The result-relevant allocator options (backend, weights, verify,
        run_simulation, fallback backends).
    capacity_limits:
        Extra per-buffer capacity bounds applied on top of the configuration.
    """
    document = {
        "cache_format": CACHE_FORMAT_VERSION,
        "configuration": configuration,
        "capacity_limits": dict(capacity_limits) if capacity_limits else None,
        "options": dict(options),
    }
    return hashlib.sha256(canonical_json(document).encode("utf-8")).hexdigest()


class NullCache:
    """A cache that stores nothing (``--no-cache``)."""

    def get(self, key: str) -> Optional[Dict[str, object]]:
        return None

    def put(self, key: str, payload: Mapping[str, object]) -> None:
        return None

    def stats(self) -> Dict[str, int]:
        return {"hits": 0, "misses": 0, "stores": 0, "evictions": 0}

    def __len__(self) -> int:
        return 0


class ResultCache:
    """A directory of canonical-hash-keyed JSON result payloads."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """Return the stored payload, or ``None`` on a miss.

        An entry that exists but cannot be parsed back into a JSON object —
        a torn write from a killed process, bit rot, or an injected
        corruption — is a miss *and is evicted*, so one bad file costs a
        single re-solve instead of a failed read on every future campaign.
        """
        path = self._path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            self._evict(path)
            self.misses += 1
            return None
        if not isinstance(payload, dict):
            self._evict(path)
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def _evict(self, path: Path) -> None:
        try:
            path.unlink()
            self.evictions += 1
        except OSError:
            pass

    def put(self, key: str, payload: Mapping[str, object]) -> None:
        """Store a payload atomically (safe under concurrent writers).

        Payloads containing non-finite floats are *not* stored: serialising
        them would write the non-standard ``NaN``/``Infinity`` JSON literals,
        producing cache files strict parsers reject.  The cache is
        best-effort, so such payloads are silently skipped (the item's result
        still reaches the caller; it just never becomes a cache hit).
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, temp_name = tempfile.mkstemp(
            prefix=f".{key[:8]}-", suffix=".tmp", dir=str(path.parent)
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(dict(payload), handle, sort_keys=True, allow_nan=False)
            os.replace(temp_name, path)
            # Cooperative chaos site: an armed ``cache.corrupt`` fault
            # truncates the just-written entry mid-record, simulating a torn
            # write for the eviction path in :meth:`get` to absorb.
            from repro.reliability.faults import maybe_fail

            if maybe_fail("cache.corrupt", label=key) is not None:
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write('{"truncated": ')
        except ValueError:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            # Only the non-finite-float case is best-effort; any other
            # ValueError (e.g. a circular reference) is a caller bug and must
            # stay loud.  Re-serialising with the default lenient mode tells
            # the two apart without matching stdlib message strings.
            json.dumps(dict(payload))
            return
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self.stores += 1

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
        }

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed."""
        removed = 0
        for entry in self.directory.glob("*/*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed
