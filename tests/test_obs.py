"""Tests of the unified telemetry layer (:mod:`repro.obs`).

The invariants asserted here are the contract the rest of the stack relies
on: disabled telemetry records nothing (while spans still measure their
duration, so statistics keep their timing fields), captures restore global
state exactly, the JSONL sink stays line-atomic under concurrent writers,
and telemetry never leaks into deterministic batch output.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.obs.export import (
    SCHEMA_VERSION,
    JsonlSink,
    read_records,
    render_metrics,
    render_profile,
    render_trace_tree,
    validate_record,
)
from repro.obs.metrics import RESERVOIR_LIMIT, MetricsRegistry
from repro.obs.progress import ProgressReporter, format_eta
from repro.obs.trace import get_tracer, span, span_tree_size


class TestSpans:
    def test_disabled_by_default_but_still_timed(self):
        assert not obs.enabled()
        with span("outer") as outer:
            pass
        assert outer.seconds >= 0.0
        assert get_tracer().drain() == []

    def test_disabled_set_is_noop(self):
        with span("outer", a=1) as outer:
            outer.set(b=2)
        assert outer.attributes == {}

    def test_nesting_and_attributes(self):
        with obs.capture() as captured:
            with span("outer", kind="root") as outer:
                with span("inner") as inner:
                    inner.set(step=3)
                outer.set(done=True)
        assert captured.span_count == 2
        (root,) = captured.spans
        assert root["name"] == "outer"
        assert root["attributes"] == {"kind": "root", "done": True}
        (child,) = root["children"]
        assert child["name"] == "inner"
        assert child["attributes"] == {"step": 3}
        assert root["seconds"] >= child["seconds"]

    def test_exception_closes_span_and_sets_error(self):
        with obs.capture() as captured:
            with pytest.raises(ValueError, match="boom"):
                with span("outer"):
                    with span("inner"):
                        raise ValueError("boom")
        (root,) = captured.spans
        assert root["status"] == "error"
        assert root["error"] == "ValueError: boom"
        (child,) = root["children"]
        assert child["status"] == "error"
        # The stack unwound fully: nothing is left open.
        assert get_tracer()._stack() == []

    def test_sibling_spans(self):
        with obs.capture() as captured:
            with span("parent"):
                with span("first"):
                    pass
                with span("second"):
                    pass
        (root,) = captured.spans
        assert [child["name"] for child in root["children"]] == ["first", "second"]

    def test_thread_local_stacks(self):
        errors = []

        def worker(index: int) -> None:
            try:
                with span(f"thread-{index}"):
                    with span("inner"):
                        pass
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        with obs.capture() as captured:
            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        assert len(captured.spans) == 4
        assert all(len(root["children"]) == 1 for root in captured.spans)

    def test_span_round_trip(self):
        with obs.capture() as captured:
            with span("outer", answer=42):
                with span("inner"):
                    pass
        from repro.obs.trace import Span

        restored = Span.from_dict(captured.spans[0])
        assert restored.as_dict() == captured.spans[0]
        assert span_tree_size(captured.spans[0]) == 2


class TestCapture:
    def test_restores_global_state(self):
        tracer = get_tracer()
        registry = obs.get_registry()
        before = (tracer.enabled, tracer.sink, registry.enabled)
        with obs.capture():
            assert tracer.enabled and registry.enabled
        assert (tracer.enabled, tracer.sink, registry.enabled) == before

    def test_filled_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs.capture() as captured:
                with span("doomed"):
                    raise RuntimeError("nope")
        assert [s["name"] for s in captured.spans] == ["doomed"]

    def test_nested_captures_do_not_bleed(self):
        with obs.capture() as outer:
            with span("outer-span"):
                pass
            with obs.capture() as inner:
                with span("inner-span"):
                    pass
            with span("outer-span-2"):
                pass
        assert [s["name"] for s in inner.spans] == ["inner-span"]
        assert [s["name"] for s in outer.spans] == ["outer-span", "outer-span-2"]

    def test_as_dict_schema(self):
        with obs.capture() as captured:
            obs.metrics.counter("c").inc()
            with span("s"):
                pass
        payload = captured.as_dict()
        assert payload["schema"] == SCHEMA_VERSION
        assert [s["name"] for s in payload["spans"]] == ["s"]
        assert payload["metrics"]["c"]["value"] == 1.0


class TestMetrics:
    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(3.0)
        registry.histogram("h").observe(1.0)
        snapshot = registry.snapshot()
        assert snapshot["c"]["value"] == 0.0
        assert snapshot["g"]["value"] is None
        assert snapshot["h"]["count"] == 0

    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("c").inc()
        registry.counter("c").inc(2.0)
        registry.gauge("g").set(1.0)
        registry.gauge("g").set(7.0)
        for value in range(1, 101):
            registry.histogram("h").observe(float(value))
        snapshot = registry.snapshot()
        assert snapshot["c"]["value"] == 3.0
        assert snapshot["g"]["value"] == 7.0
        h = snapshot["h"]
        assert h["count"] == 100
        assert h["min"] == 1.0 and h["max"] == 100.0
        assert h["p50"] == pytest.approx(50.5)
        assert h["p90"] == pytest.approx(90.1)
        assert h["p99"] == pytest.approx(99.01)

    def test_instrument_type_conflict(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("x")
        with pytest.raises(TypeError, match="Counter"):
            registry.histogram("x")

    def test_reservoir_is_bounded(self):
        registry = MetricsRegistry(enabled=True)
        h = registry.histogram("h")
        for value in range(3 * RESERVOIR_LIMIT):
            h.observe(float(value))
        assert h.count == 3 * RESERVOIR_LIMIT
        assert len(h.samples) <= RESERVOIR_LIMIT
        # Exact aggregates are unaffected by decimation.
        assert h.min == 0.0 and h.max == float(3 * RESERVOIR_LIMIT - 1)

    def test_merge_snapshot(self):
        worker = MetricsRegistry(enabled=True)
        worker.counter("solves").inc(3)
        worker.gauge("running").set(2.0)
        for value in (1.0, 2.0, 3.0):
            worker.histogram("newton").observe(value)

        aggregate = MetricsRegistry(enabled=True)
        aggregate.counter("solves").inc()
        aggregate.histogram("newton").observe(10.0)
        # Merging works even into a disabled aggregator.
        disabled = MetricsRegistry()
        disabled.merge_snapshot(worker.snapshot())
        assert disabled.snapshot()["solves"]["value"] == 3.0

        aggregate.merge_snapshot(worker.snapshot())
        snapshot = aggregate.snapshot()
        assert snapshot["solves"]["value"] == 4.0
        assert snapshot["running"]["value"] == 2.0
        newton = snapshot["newton"]
        assert newton["count"] == 4
        assert newton["sum"] == pytest.approx(16.0)
        assert newton["min"] == 1.0 and newton["max"] == 10.0

    def test_merge_is_quantile_preserving(self):
        parts = []
        for offset in (0, 100, 200):
            registry = MetricsRegistry(enabled=True)
            for value in range(offset, offset + 100):
                registry.histogram("h").observe(float(value))
            parts.append(registry.snapshot())
        merged = MetricsRegistry()
        for part in parts:
            merged.merge_snapshot(part)
        h = merged.snapshot()["h"]
        assert h["count"] == 300
        assert h["p50"] == pytest.approx(149.5)

    def test_concurrent_increments_are_exact(self):
        # Regression: lost updates under concurrent inc()/observe() from the
        # decomposed solver's worker threads.  Exactness is the signal — any
        # unsynchronised read-modify-write eventually drops an update.
        registry = MetricsRegistry(enabled=True)
        threads, per_thread = 8, 2000
        barrier = threading.Barrier(threads)

        def hammer(worker_index: int) -> None:
            counter = registry.counter("solves")
            histogram = registry.histogram("seconds")
            barrier.wait()
            for _ in range(per_thread):
                counter.inc()
                histogram.observe(1.0)
                registry.gauge(f"worker[{worker_index}]").set(float(worker_index))

        pool = [
            threading.Thread(target=hammer, args=(index,)) for index in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

        snapshot = registry.snapshot()
        assert snapshot["solves"]["value"] == float(threads * per_thread)
        assert snapshot["seconds"]["count"] == threads * per_thread
        assert snapshot["seconds"]["sum"] == pytest.approx(float(threads * per_thread))
        for index in range(threads):
            assert snapshot[f"worker[{index}]"]["value"] == float(index)

    def test_concurrent_instrument_creation_yields_one_instance(self):
        registry = MetricsRegistry(enabled=True)
        results = []
        barrier = threading.Barrier(8)

        def create() -> None:
            barrier.wait()
            results.append(registry.counter("shared"))

        pool = [threading.Thread(target=create) for _ in range(8)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert len({id(instrument) for instrument in results}) == 1

    def test_merge_concurrent_with_writers(self):
        # merge_snapshot() must also take the instrument locks: an aggregator
        # folding worker snapshots while local threads keep incrementing may
        # not lose either side's updates.
        worker = MetricsRegistry(enabled=True)
        worker.counter("solves").inc(5)
        worker.histogram("seconds").observe(2.0)
        part = worker.snapshot()

        aggregate = MetricsRegistry(enabled=True)
        merges, incs = 50, 2000
        barrier = threading.Barrier(2)

        def merge_loop() -> None:
            barrier.wait()
            for _ in range(merges):
                aggregate.merge_snapshot(part)

        def inc_loop() -> None:
            counter = aggregate.counter("solves")
            histogram = aggregate.histogram("seconds")
            barrier.wait()
            for _ in range(incs):
                counter.inc()
                histogram.observe(1.0)

        pool = [
            threading.Thread(target=merge_loop),
            threading.Thread(target=inc_loop),
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

        snapshot = aggregate.snapshot()
        assert snapshot["solves"]["value"] == float(5 * merges + incs)
        assert snapshot["seconds"]["count"] == merges + incs
        assert snapshot["seconds"]["sum"] == pytest.approx(float(2 * merges + incs))


class TestJsonlSink:
    def test_round_trip_and_validation(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            with obs.capture(sink=sink) as captured:
                with span("outer", k="v"):
                    with span("inner"):
                        pass
                obs.metrics.counter("c").inc()
        records = read_records(path)
        # One span record (emitted by the sink as the root closed) and one
        # metrics record (emitted by capture() on exit).
        assert [record["kind"] for record in records] == ["span", "metrics"]
        for record in records:
            validate_record(record)
        assert records[0]["span"]["name"] == "outer"
        assert captured.spans[0] == records[0]["span"]

    def test_concurrent_writers_produce_complete_records(self, tmp_path):
        path = tmp_path / "contended.jsonl"
        sink = JsonlSink(path)
        per_thread = 50

        def worker(index: int) -> None:
            for count in range(per_thread):
                sink.emit_span(
                    {
                        "name": f"w{index}-{count}",
                        "seconds": 0.001,
                        "status": "ok",
                        # Padding makes torn writes (if any) easy to detect.
                        "attributes": {"payload": "x" * 256},
                    }
                )

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        sink.close()

        records = read_records(path)
        assert len(records) == 4 * per_thread
        for record in records:
            validate_record(record)
        names = {record["span"]["name"] for record in records}
        assert len(names) == 4 * per_thread

    @pytest.mark.parametrize(
        "record",
        [
            {"kind": "span", "pid": 1, "ts": 0.0, "span": {}},
            {"schema": 99, "kind": "span", "pid": 1, "ts": 0.0, "span": {}},
            {"schema": SCHEMA_VERSION, "kind": "nope", "pid": 1, "ts": 0.0},
            {
                "schema": SCHEMA_VERSION,
                "kind": "span",
                "pid": 1,
                "ts": 0.0,
                "span": {"name": "x", "seconds": -1.0, "status": "ok"},
            },
            {
                "schema": SCHEMA_VERSION,
                "kind": "span",
                "pid": 1,
                "ts": 0.0,
                "span": {"name": "x", "seconds": 0.1, "status": "error"},
            },
            {
                "schema": SCHEMA_VERSION,
                "kind": "metrics",
                "pid": 1,
                "ts": 0.0,
                "metrics": {"m": {"type": "mystery"}},
            },
            {
                "schema": SCHEMA_VERSION,
                "kind": "span",
                "pid": "one",
                "ts": 0.0,
                "span": {"name": "x", "seconds": 0.1, "status": "ok"},
            },
        ],
    )
    def test_validate_record_rejects_malformed(self, record):
        with pytest.raises(ValueError):
            validate_record(record)


class TestRenderers:
    def _spans(self):
        with obs.capture() as captured:
            with span("outer"):
                with span("inner", step=1):
                    pass
                with pytest.raises(RuntimeError):
                    with span("broken"):
                        raise RuntimeError("bad")
        return captured.spans

    def test_trace_tree(self):
        with obs.capture() as captured:
            with span("outer"):
                with span("inner", step=1):
                    pass
        text = render_trace_tree(captured.spans)
        assert "outer" in text
        assert "└─ inner" in text
        assert "step=1" in text

    def test_trace_tree_marks_errors(self):
        with pytest.raises(RuntimeError):
            with obs.capture() as captured:
                with span("broken"):
                    raise RuntimeError("bad")
        text = render_trace_tree(captured.spans)
        assert "broken [error]" in text
        assert "RuntimeError: bad" in text

    def test_empty_renderers(self):
        assert "no spans" in render_trace_tree([])
        assert "no spans" in render_profile([])
        assert "none recorded" in render_metrics({})

    def test_profile_aggregates_by_name(self):
        with obs.capture() as captured:
            for _ in range(3):
                with span("repeat"):
                    pass
        text = render_profile(captured.spans)
        line = next(line for line in text.splitlines() if line.startswith("repeat"))
        assert " 3 " in line

    def test_metrics_rendering(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("solver.solves").inc(5)
        for value in (1.0, 2.0, 3.0):
            registry.histogram("solver.newton").observe(value)
        text = render_metrics(registry.snapshot())
        assert "solver.solves" in text
        assert "p50=2" in text


class TestProgressReporter:
    class _Result:
        def __init__(self, status="ok", from_cache=False):
            self.status = status
            self.from_cache = from_cache

    class _Stream:
        def __init__(self):
            self.lines = []

        def write(self, text):
            self.lines.append(text)

        def flush(self):
            pass

    def test_accounting_and_line(self):
        stream = self._Stream()
        reporter = ProgressReporter(total=4, stream=stream)
        reporter.update(self._Result("ok"))
        reporter.update(self._Result("infeasible"))
        reporter.update(self._Result("error"))
        reporter.update(self._Result("ok", from_cache=True))
        reporter.close()
        assert reporter.done == 4
        assert reporter.feasible == 2
        assert reporter.infeasible == 1
        assert reporter.failed == 1
        assert reporter.cached == 1
        line = reporter.line()
        assert "[4/4]" in line and "100.0%" in line
        assert "ok=2 infeasible=1 failed=1" in line
        assert "cached=1" in line
        # Non-TTY stride for a 4-item run is 1: one line per item.
        assert len([text for text in stream.lines if text.endswith("\n")]) >= 4

    def test_format_eta(self):
        assert format_eta(42) == "42s"
        assert format_eta(200) == "3m 20s"
        assert format_eta(5400) == "1h 30m"


class TestSolverTelemetry:
    def test_solve_produces_phase_spans_and_metrics(self):
        from repro.core import JointAllocator, AllocatorOptions
        from repro.taskgraph.generators import chain_configuration

        configuration = chain_configuration(stages=3)
        allocator = JointAllocator(
            options=AllocatorOptions(backend="barrier", run_simulation=False)
        )
        with obs.capture() as captured:
            allocator.allocate(configuration)
        (root,) = captured.spans
        assert root["name"] == "allocate"
        names = [child["name"] for child in root["children"]]
        assert names[:2] == ["compile", "solve"]
        assert "rounding" in names and "verify" in names
        solve = root["children"][1]
        phases = [child["name"] for child in solve["children"]]
        assert phases == ["phase1", "centering"]
        centering = solve["children"][1]
        assert all(child["name"] == "rung" for child in centering["children"])
        assert len(centering["children"]) >= 1
        assert captured.metrics["solver.solves"]["value"] == 1.0
        assert captured.metrics["solver.newton_iterations"]["count"] == 1

    def test_admission_metrics(self):
        from repro.core.admission import replay_trace, random_trace

        trace = random_trace(event_count=4, seed=5)
        with obs.capture() as captured:
            result = replay_trace(trace)
        decisions = captured.metrics.get(
            "admission.admitted", {"value": 0.0}
        )["value"] + captured.metrics.get("admission.rejected", {"value": 0.0})[
            "value"
        ]
        arrivals = sum(1 for event in trace.events if event.action == "arrive")
        assert decisions == float(arrivals)
        assert captured.metrics["admission.decision_seconds"]["count"] == arrivals
        admit_spans = [s for s in captured.spans if s["name"] == "admit"]
        assert len(admit_spans) == arrivals
        assert result.admitted + result.rejected == arrivals

    def test_disabled_solve_stats_keep_timing_fields(self):
        from repro.core import JointAllocator, AllocatorOptions
        from repro.taskgraph.generators import chain_configuration

        assert not obs.enabled()
        mapped = JointAllocator(
            options=AllocatorOptions(backend="barrier", run_simulation=False)
        ).allocate(chain_configuration(stages=2))
        timings = mapped.solver_info["timings"]
        # Disabled spans still time themselves, so the stats contract holds.
        assert timings["compile"] > 0.0
        assert timings["centering"] > 0.0
        assert mapped.solver_info["solve_time"] > 0.0


class TestBatchTelemetry:
    @pytest.fixture
    def spec(self):
        from repro.batch import CampaignSpec

        return CampaignSpec.from_dict(
            {
                "name": "tele",
                "entries": [{"generator": "chain", "sweep": {"stages": [2, 3]}}],
            }
        )

    def test_worker_telemetry_rides_item_results(self, spec):
        from repro.batch import run_campaign

        executors = []
        results, _ = run_campaign(spec, telemetry=True, executor_out=executors)
        assert all(result.telemetry for result in results)
        for result in results:
            payload = result.telemetry
            assert payload["schema"] == SCHEMA_VERSION
            assert payload["spans"], "per-item span trees must ride along"
            for root in payload["spans"]:
                validate_record(
                    {
                        "schema": SCHEMA_VERSION,
                        "kind": "span",
                        "pid": 0,
                        "ts": 0.0,
                        "span": root,
                    }
                )
        (executor,) = executors
        merged = executor.metrics.snapshot()
        assert merged["solver.solves"]["value"] == float(len(results))
        assert merged["batch.solved"]["value"] == float(len(results))
        assert merged["solver.newton_iterations"]["count"] == len(results)

    def test_telemetry_is_excluded_from_output_payloads(self, spec):
        from repro.batch import run_campaign

        results, _ = run_campaign(spec, telemetry=True)
        for result in results:
            assert result.telemetry
            assert "telemetry" not in result.to_dict()
            assert "telemetry" not in result.deterministic_dict()

    def test_one_vs_n_workers_byte_identical_with_telemetry(self, spec):
        from repro.batch import run_campaign

        serial, _ = run_campaign(spec, workers=1, telemetry=True)
        parallel, _ = run_campaign(spec, workers=2, telemetry=True)
        serial_json = json.dumps(
            [result.deterministic_dict() for result in serial], sort_keys=True
        )
        parallel_json = json.dumps(
            [result.deterministic_dict() for result in parallel], sort_keys=True
        )
        assert serial_json == parallel_json

    def test_telemetry_does_not_change_cache_keys_or_payloads(self, spec, tmp_path):
        from repro.batch import run_campaign

        cold, _ = run_campaign(spec, cache_dir=tmp_path, telemetry=True)
        warm, _ = run_campaign(spec, cache_dir=tmp_path, telemetry=True)
        assert all(result.from_cache for result in warm)
        # Cached payloads never carry telemetry (it is wall-clock transport
        # data), so warm results have none — but the deterministic payloads
        # round-trip exactly.
        assert all(result.telemetry is None for result in warm)
        for before, after in zip(cold, warm):
            assert before.deterministic_dict() == after.deterministic_dict()

    def test_telemetry_off_by_default(self, spec):
        from repro.batch import run_campaign

        results, _ = run_campaign(spec)
        assert all(result.telemetry is None for result in results)
