"""Budget schedulers: latency-rate characterisation, TDM model and allocations."""

from repro.scheduling.budget import (
    BudgetAllocation,
    allocations_from_mapping,
    validate_budget_feasibility,
)
from repro.scheduling.latency_rate import LatencyRateServer, required_budget_for_completion
from repro.scheduling.tdm import (
    TdmScheduler,
    TdmSimulationResult,
    TdmSlotTable,
    build_slot_table,
)

__all__ = [
    "BudgetAllocation",
    "LatencyRateServer",
    "TdmScheduler",
    "TdmSimulationResult",
    "TdmSlotTable",
    "allocations_from_mapping",
    "build_slot_table",
    "required_budget_for_completion",
    "validate_budget_feasibility",
]
