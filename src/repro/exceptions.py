"""Library-wide exception hierarchy.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish modelling errors from solver failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ModelError(ReproError):
    """An application model (task graph, platform, configuration) is invalid."""


class GraphStructureError(ModelError):
    """A task graph or dataflow graph violates a structural requirement."""


class BindingError(ModelError):
    """A task or buffer refers to a processor or memory that does not exist."""


class SolverError(ReproError):
    """Base class for optimisation-related failures."""


class FormulationError(SolverError):
    """A mathematical program is malformed (unknown variable, bad sense, ...)."""


class InfeasibleProblemError(SolverError):
    """The optimisation problem admits no feasible point.

    For the joint budget/buffer problem this typically means the throughput
    requirement cannot be met within the given processor capacities, memory
    capacities or buffer-size bounds.
    """


class InfeasibleModelError(ModelError, InfeasibleProblemError):
    """A load screen proved that no feasible allocation exists.

    Raised by the validation screens (per-configuration and combined workload
    processor/memory load checks) when the throughput-implied lower bounds
    alone already exceed a capacity: the input is a well-formed model *and* a
    definitively infeasible problem.  Deriving from both
    :class:`ModelError` and :class:`InfeasibleProblemError` lets validation
    callers keep treating it as a modelling verdict while allocation layers
    (sweeps, batch items) handle it exactly like solver-reported
    infeasibility — a terminal answer, not a failure to retry.
    """


class UnboundedProblemError(SolverError):
    """The optimisation problem is unbounded below."""


class NumericalError(SolverError):
    """The solver failed to converge to the requested tolerance."""


class AnalysisError(ReproError):
    """A dataflow analysis could not be carried out."""


class SimulationError(ReproError):
    """A self-timed or TDM simulation detected an inconsistent state."""


class AllocationError(ReproError):
    """A mapped configuration could not be produced or failed verification."""


class ReliabilityError(ReproError):
    """Base class for failures of the durability layer (journal, snapshot)."""


class JournalError(ReliabilityError):
    """An admission journal is unreadable, corrupt or inconsistent.

    Raised for checksum mismatches on *complete* records, sequence-number
    gaps and replay divergence.  A truncated final record (a crash mid-append)
    is *not* an error — the reader drops it and reports the journal as
    truncated, because losing the very last in-flight record is exactly the
    failure mode a write-ahead log is specified to tolerate.
    """


class SnapshotError(ReliabilityError):
    """A session snapshot cannot be applied (wrong platform, newer than the
    journal tail, or an unsupported format version)."""


class FaultInjected(ReproError):
    """An error raised on purpose by an armed fault-injection site.

    Only ever raised while a :class:`repro.reliability.faults.FaultPlan` is
    armed (i.e. inside chaos tests); production code paths treat it like any
    other unexpected failure, which is the point — the handling ladder under
    test is the real one.
    """
