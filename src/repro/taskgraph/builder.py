"""Fluent builders for configurations and task graphs.

The dataclass-based model in :mod:`repro.taskgraph` is deliberately explicit;
these builders provide the compact construction style used throughout the
examples and experiments:

>>> from repro.taskgraph import ConfigurationBuilder
>>> config = (
...     ConfigurationBuilder(name="demo", granularity=1.0)
...     .processor("p1", replenishment_interval=40.0)
...     .processor("p2", replenishment_interval=40.0)
...     .memory("m1")
...     .task_graph("job", period=10.0)
...     .task("wa", wcet=1.0, processor="p1")
...     .task("wb", wcet=1.0, processor="p2")
...     .buffer("bab", source="wa", target="wb", memory="m1")
...     .build()
... )
>>> [g.name for g in config.task_graphs]
['job']
"""

from __future__ import annotations

from typing import List, Optional

from repro.exceptions import ModelError
from repro.taskgraph.buffer import Buffer
from repro.taskgraph.configuration import Configuration
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.platform import Memory, Platform, Processor
from repro.taskgraph.task import Task


class ConfigurationBuilder:
    """Incrementally assemble a :class:`~repro.taskgraph.configuration.Configuration`."""

    def __init__(self, name: str = "configuration", granularity: float = 1.0) -> None:
        self._name = name
        self._granularity = granularity
        self._processors: List[Processor] = []
        self._memories: List[Memory] = []
        self._graphs: List[TaskGraph] = []
        self._current_graph: Optional[TaskGraph] = None

    # -- platform ------------------------------------------------------------
    def processor(
        self,
        name: str,
        replenishment_interval: float,
        scheduling_overhead: float = 0.0,
    ) -> "ConfigurationBuilder":
        """Add a processor to the platform."""
        self._processors.append(
            Processor(
                name=name,
                replenishment_interval=replenishment_interval,
                scheduling_overhead=scheduling_overhead,
            )
        )
        return self

    def memory(self, name: str, capacity: Optional[float] = None) -> "ConfigurationBuilder":
        """Add a memory to the platform."""
        self._memories.append(Memory(name=name, capacity=capacity))
        return self

    # -- task graphs ------------------------------------------------------------
    def task_graph(self, name: str, period: float) -> "ConfigurationBuilder":
        """Start a new task graph; subsequent tasks/buffers are added to it."""
        graph = TaskGraph(name=name, period=period)
        self._graphs.append(graph)
        self._current_graph = graph
        return self

    def _require_graph(self) -> TaskGraph:
        if self._current_graph is None:
            raise ModelError(
                "call task_graph(...) before adding tasks or buffers"
            )
        return self._current_graph

    def task(
        self,
        name: str,
        wcet: float,
        processor: str,
        budget_weight: float = 1.0,
        min_budget: Optional[float] = None,
        max_budget: Optional[float] = None,
    ) -> "ConfigurationBuilder":
        """Add a task to the current task graph."""
        self._require_graph().add_task(
            Task(
                name=name,
                wcet=wcet,
                processor=processor,
                budget_weight=budget_weight,
                min_budget=min_budget,
                max_budget=max_budget,
            )
        )
        return self

    def buffer(
        self,
        name: str,
        source: str,
        target: str,
        memory: str,
        container_size: float = 1.0,
        initial_tokens: int = 0,
        capacity_weight: float = 1.0,
        min_capacity: Optional[int] = None,
        max_capacity: Optional[int] = None,
    ) -> "ConfigurationBuilder":
        """Add a FIFO buffer to the current task graph."""
        self._require_graph().add_buffer(
            Buffer(
                name=name,
                source=source,
                target=target,
                memory=memory,
                container_size=container_size,
                initial_tokens=initial_tokens,
                capacity_weight=capacity_weight,
                min_capacity=min_capacity,
                max_capacity=max_capacity,
            )
        )
        return self

    # -- finalisation ---------------------------------------------------------------
    def build(self, validate: bool = True) -> Configuration:
        """Assemble the configuration; validates it unless ``validate=False``."""
        platform = Platform(
            processors=self._processors, memories=self._memories, name=f"{self._name}-platform"
        )
        configuration = Configuration(
            platform=platform,
            task_graphs=self._graphs,
            granularity=self._granularity,
            name=self._name,
        )
        if validate:
            configuration.validate()
        return configuration
