"""Metrics: counters, gauges and quantile histograms.

The registry is the typed replacement for the per-module ad-hoc stats dicts:
one process-global (or explicitly scoped) :class:`MetricsRegistry` holds
named instruments —

* :class:`Counter` — monotonically increasing event counts
  (``solver.solves``, ``batch.cache_hits``);
* :class:`Gauge` — last-written values (``admission.running``);
* :class:`Histogram` — observed distributions with ``p50``/``p90``/``p99``
  quantiles (``solver.newton_iterations``, ``admission.decision_seconds``).

Everything is thread-safe — one lock *per instrument*, so concurrent
increments of different metrics (the decomposed solver's worker threads, the
batch executor's pool) never contend on a shared registry lock; the registry
lock only guards instrument creation and whole-registry operations.  Like
tracing, metrics are **disabled by default**: every instrument method checks
the registry's ``enabled`` flag first, so an instrumented hot path pays one
attribute check and nothing else when telemetry is off.

Snapshots are plain JSON-serialisable dicts and *mergeable*:
:meth:`MetricsRegistry.merge_snapshot` folds a worker process's snapshot into
an aggregator, which is how ``repro-map batch`` combines per-item worker
metrics into campaign totals.  Histograms keep a bounded sample reservoir
(oldest-half decimation once :data:`RESERVOIR_LIMIT` is hit) so unbounded
campaigns cannot grow memory without bound; ``count``/``sum``/``min``/``max``
stay exact.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "counter",
    "gauge",
    "histogram",
]

#: Per-histogram sample cap; beyond it every other retained sample is dropped
#: (quantiles stay approximate but stable, exact aggregates are unaffected).
RESERVOIR_LIMIT = 4096

#: Quantiles reported by every histogram snapshot.
QUANTILES = (0.5, 0.9, 0.99)


class Counter:
    """A monotonically increasing count; safe under concurrent increments."""

    __slots__ = ("name", "value", "_registry", "_lock")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self.value = 0.0
        self._registry = registry
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        registry = self._registry
        if not registry.enabled:
            return
        with self._lock:
            self.value += amount

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {"type": "counter", "value": self.value}


class Gauge:
    """A last-written value."""

    __slots__ = ("name", "value", "_registry", "_lock")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self.value: Optional[float] = None
        self._registry = registry
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        registry = self._registry
        if not registry.enabled:
            return
        with self._lock:
            self.value = float(value)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {"type": "gauge", "value": self.value}


class Histogram:
    """An observed distribution with exact aggregates and sampled quantiles."""

    __slots__ = ("name", "count", "sum", "min", "max", "samples", "_registry", "_lock")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.samples: List[float] = []
        self._registry = registry
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        registry = self._registry
        if not registry.enabled:
            return
        value = float(value)
        with self._lock:
            self._observe_locked(value)

    def _observe_locked(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.samples.append(value)
        if len(self.samples) > RESERVOIR_LIMIT:
            # Decimate: keep every other sample, preserving the spread.
            self.samples = self.samples[::2]

    @staticmethod
    def _quantile_of(samples: List[float], q: float) -> Optional[float]:
        if not samples:
            return None
        ordered = sorted(samples)
        if len(ordered) == 1:
            return ordered[0]
        position = q * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def quantile(self, q: float) -> Optional[float]:
        """Sample quantile by linear interpolation (``None`` when empty)."""
        with self._lock:
            samples = list(self.samples)
        return self._quantile_of(samples, q)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            count, total = self.count, self.sum
            minimum, maximum = self.min, self.max
            samples = list(self.samples)
        data: Dict[str, object] = {
            "type": "histogram",
            "count": count,
            "sum": total,
            "min": minimum,
            "max": maximum,
        }
        for q in QUANTILES:
            data[f"p{int(q * 100)}"] = self._quantile_of(samples, q)
        # Samples ride along so snapshots merge without losing quantiles.
        data["samples"] = samples
        return data


_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """A named collection of instruments; disabled (and write-free) by default."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.RLock()
        self._instruments: Dict[str, object] = {}

    # -- instrument access --------------------------------------------------
    def _instrument(self, name: str, cls):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = cls(name, self)
                self._instruments[name] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name!r} is a {type(instrument).__name__}, "
                    f"not a {cls.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._instrument(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._instrument(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._instrument(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    # -- snapshots ----------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-serialisable state of every instrument, keyed by name."""
        with self._lock:
            return {
                name: instrument.snapshot()
                for name, instrument in sorted(self._instruments.items())
            }

    def merge_snapshot(self, snapshot: Mapping[str, Mapping[str, object]]) -> None:
        """Fold another registry's snapshot into this one.

        Counters and histogram aggregates add; gauges take the incoming value
        (last write wins); histogram samples concatenate (re-capped by the
        reservoir limit).  Works regardless of this registry's ``enabled``
        flag — an aggregator may stay disabled for local instrumentation
        while still merging worker snapshots.
        """
        with self._lock:
            for name, data in snapshot.items():
                kind = str(data.get("type", ""))
                cls = _TYPES.get(kind)
                if cls is None:
                    continue
                instrument = self._instrument(name, cls)
                # Writers synchronise on the instrument lock, so merging must
                # too (the registry lock alone no longer excludes them).
                if kind == "counter":
                    with instrument._lock:
                        instrument.value += float(data.get("value", 0.0) or 0.0)
                elif kind == "gauge":
                    if data.get("value") is not None:
                        with instrument._lock:
                            instrument.value = float(data["value"])
                else:
                    count = int(data.get("count", 0))
                    if count == 0:
                        continue
                    with instrument._lock:
                        instrument.count += count
                        instrument.sum += float(data.get("sum", 0.0))
                        for bound, pick in (("min", min), ("max", max)):
                            incoming = data.get(bound)
                            if incoming is None:
                                continue
                            current = getattr(instrument, bound)
                            setattr(
                                instrument,
                                bound,
                                float(incoming)
                                if current is None
                                else pick(current, float(incoming)),
                            )
                        instrument.samples.extend(
                            float(v) for v in data.get("samples", [])
                        )
                        while len(instrument.samples) > RESERVOIR_LIMIT:
                            instrument.samples = instrument.samples[::2]

    def reset(self) -> None:
        with self._lock:
            self._instruments.clear()


#: The process-global registry behind the module-level helpers.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _REGISTRY


def counter(name: str) -> Counter:
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return _REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    return _REGISTRY.histogram(name)
