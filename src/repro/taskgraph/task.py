"""Task model.

A task ``w`` is a piece of sequential code that is bound to a processor
``π(w)``, has a worst-case execution time ``χ(w)`` on that processor and is
scheduled by the processor's budget scheduler with an (initially unknown)
budget ``β(w)``.  A task starts an execution when sufficient data is present
in all of its input FIFO buffers and sufficient space is present in all of its
output FIFO buffers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ModelError


@dataclass(frozen=True)
class Task:
    """A task of a task graph.

    Attributes
    ----------
    name:
        Unique identifier (unique within the whole configuration).
    wcet:
        Worst-case execution time ``χ(w)`` on the bound processor, in the same
        time unit as the replenishment intervals.
    processor:
        Name of the processor ``π(w)`` the task is bound to.
    budget_weight:
        Coefficient ``a(w)`` of this task's budget in the objective function
        of the joint optimisation (larger means "this budget is more
        expensive").
    min_budget, max_budget:
        Optional bounds on the budget allocated to this task.  ``None`` leaves
        the bound to be derived from the throughput requirement and processor
        capacity.
    """

    name: str
    wcet: float
    processor: str
    budget_weight: float = 1.0
    min_budget: Optional[float] = None
    max_budget: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("task name must be non-empty")
        if self.wcet <= 0.0:
            raise ModelError(
                f"task {self.name!r} needs a positive worst-case execution time, "
                f"got {self.wcet!r}"
            )
        if not self.processor:
            raise ModelError(f"task {self.name!r} must be bound to a processor")
        if self.budget_weight < 0.0:
            raise ModelError(f"task {self.name!r} has a negative budget weight")
        if self.min_budget is not None and self.min_budget <= 0.0:
            raise ModelError(f"task {self.name!r}: min_budget must be positive")
        if self.max_budget is not None and self.max_budget <= 0.0:
            raise ModelError(f"task {self.name!r}: max_budget must be positive")
        if (
            self.min_budget is not None
            and self.max_budget is not None
            and self.min_budget > self.max_budget
        ):
            raise ModelError(
                f"task {self.name!r}: min_budget {self.min_budget} exceeds "
                f"max_budget {self.max_budget}"
            )

    def with_processor(self, processor: str) -> "Task":
        """Return a copy of this task bound to a different processor."""
        return Task(
            name=self.name,
            wcet=self.wcet,
            processor=processor,
            budget_weight=self.budget_weight,
            min_budget=self.min_budget,
            max_budget=self.max_budget,
        )
